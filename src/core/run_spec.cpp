#include "core/run_spec.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "baselines/pvtsizing.hpp"
#include "baselines/robustanalog.hpp"
#include "common/text.hpp"
#include "core/optimizer.hpp"

namespace glova::core {

namespace {

std::string format_double(double v) { return format_double_roundtrip(v); }

[[noreturn]] void bad_spec(const std::string& what) {
  // The pointer into docs/ keeps every grammar/validation error self-serve:
  // the doc lists each key, its type, default, and constraint.
  throw std::invalid_argument("RunSpec: " + what + " (see docs/run_spec.md)");
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_spec("invalid integer for " + std::string(key) + ": '" + std::string(value) + "'");
  }
  return out;
}

double parse_double(std::string_view key, std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_spec("invalid number for " + std::string(key) + ": '" + std::string(value) + "'");
  }
  return out;
}

bool parse_bool(std::string_view key, std::string_view value) {
  const std::string v = to_lower(value);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  bad_spec("invalid boolean for " + std::string(key) + ": '" + std::string(value) + "'");
}

}  // namespace

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Glova: return "glova";
    case Algorithm::PvtSizing: return "pvtsizing";
    case Algorithm::RobustAnalog: return "robustanalog";
  }
  return "?";
}

std::optional<Algorithm> algorithm_from_string(std::string_view name) {
  const std::string n = to_lower(name);
  for (const Algorithm a : all_algorithms()) {
    if (n == to_string(a)) return a;
  }
  if (n == "ours") return Algorithm::Glova;  // the paper's Table II row label
  return std::nullopt;
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::Glova, Algorithm::PvtSizing, Algorithm::RobustAnalog};
}

namespace {

/// The backend-independent part of RunSpec::validate(); also applied by the
/// custom-testbench make_optimizer overload, which skips the registry check.
void validate_scalars(const RunSpec& spec) {
  if (spec.max_iterations == 0) bad_spec("max_iterations must be >= 1");
  if (spec.n_opt_samples == 0) bad_spec("n_opt_samples must be >= 1");
  if (spec.corner_filter != "all" && spec.corner_filter != "cold_lv") {
    bad_spec("corner_filter must be 'all' or 'cold_lv'");
  }
  if (spec.engine.cache_quantum <= 0.0) bad_spec("engine.cache_quantum must be positive");
  if (spec.cost.per_simulation < 0.0 || spec.cost.per_rl_iteration < 0.0) {
    bad_spec("simulation costs must be non-negative");
  }
  if (spec.budget.max_wall_seconds < 0.0) {
    bad_spec("budget.max_wall_seconds must be non-negative");
  }
  if (spec.engine.surrogate_keep <= 0.0 || spec.engine.surrogate_keep > 1.0) {
    bad_spec("engine.surrogate_keep must be in (0, 1]");
  }
  for (const char c : spec.engine.cache_path) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      bad_spec("engine.cache_path must not contain whitespace");
    }
  }
}

}  // namespace

void RunSpec::validate() const {
  if (!circuits::is_available(testcase, backend)) {
    bad_spec(std::string("no ") + circuits::to_string(backend) + " backend for testcase " +
             circuits::to_string(testcase) +
             "; available combinations: " + circuits::supported_combinations());
  }
  validate_scalars(*this);
}

const std::vector<std::string_view>& run_spec_keys() {
  // Canonical emission order — keep in lockstep with to_string() below and
  // the parser in from_string(); tests/test_docs.cpp asserts this list, the
  // to_string() output, and docs/run_spec.md all agree.
  static const std::vector<std::string_view> keys = {
      "testcase",        "backend",
      "algorithm",       "method",
      "corner_filter",   "seed",
      "max_iterations",
      "n_opt_samples",
      "use_ensemble_critic",
      "use_mu_sigma",    "use_reordering",
      "max_simulations", "budget_iterations",
      "max_wall_seconds", "cost_per_simulation",
      "cost_per_rl_iteration", "parallelism",
      "min_parallel_batch", "cache_capacity",
      "cache_quantum",   "dc_warm_start",
      "batched_draws",   "adaptive_timestep",
      "newton_bypass",   "recovery",
      "mos_model",       "spice_noise",
      "max_eval_retries", "eval_deadline_steps",
      "degrade_to_behavioral", "cache_path",
      "surrogate",       "surrogate_keep",
      "surrogate_warmup", "progress_log",
  };
  return keys;
}

std::string RunSpec::to_string() const {
  std::string out;
  const auto kv = [&out](std::string_view key, const std::string& value) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  };
  kv("testcase", circuits::to_string(testcase));
  kv("backend", circuits::to_string(backend));
  kv("algorithm", core::to_string(algorithm));
  kv("method", core::to_string(method));
  kv("corner_filter", corner_filter);
  kv("seed", std::to_string(seed));
  kv("max_iterations", std::to_string(max_iterations));
  kv("n_opt_samples", std::to_string(n_opt_samples));
  kv("use_ensemble_critic", use_ensemble_critic ? "1" : "0");
  kv("use_mu_sigma", use_mu_sigma ? "1" : "0");
  kv("use_reordering", use_reordering ? "1" : "0");
  kv("max_simulations", std::to_string(budget.max_simulations));
  kv("budget_iterations", std::to_string(budget.max_iterations));
  kv("max_wall_seconds", format_double(budget.max_wall_seconds));
  kv("cost_per_simulation", format_double(cost.per_simulation));
  kv("cost_per_rl_iteration", format_double(cost.per_rl_iteration));
  kv("parallelism", std::to_string(engine.parallelism));
  kv("min_parallel_batch", std::to_string(engine.min_parallel_batch));
  kv("cache_capacity", std::to_string(engine.cache_capacity));
  kv("cache_quantum", format_double(engine.cache_quantum));
  kv("dc_warm_start", engine.dc_warm_start ? "1" : "0");
  kv("batched_draws", engine.batched_draws ? "1" : "0");
  kv("adaptive_timestep", engine.adaptive_timestep ? "1" : "0");
  kv("newton_bypass", engine.newton_bypass ? "1" : "0");
  kv("recovery", engine.recovery ? "1" : "0");
  kv("mos_model", engine.mos_model);
  kv("spice_noise", engine.spice_noise ? "1" : "0");
  kv("max_eval_retries", std::to_string(engine.max_eval_retries));
  kv("eval_deadline_steps", std::to_string(engine.eval_deadline_steps));
  kv("degrade_to_behavioral", engine.degrade_to_behavioral ? "1" : "0");
  kv("cache_path", engine.cache_path);  // empty value round-trips as "cache_path="
  kv("surrogate", engine.surrogate ? "1" : "0");
  kv("surrogate_keep", format_double(engine.surrogate_keep));
  kv("surrogate_warmup", std::to_string(engine.surrogate_warmup));
  kv("progress_log", progress_log ? "1" : "0");
  return out;
}

RunSpec RunSpec::from_string(std::string_view text) {
  RunSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos >= text.size()) break;
    std::size_t end = pos;
    while (end < text.size() && !std::isspace(static_cast<unsigned char>(text[end]))) ++end;
    const std::string_view token = text.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      bad_spec("expected key=value, got '" + std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);

    if (key == "testcase") {
      const auto tc = circuits::testcase_from_string(value);
      if (!tc) bad_spec("unknown testcase '" + std::string(value) + "'");
      spec.testcase = *tc;
    } else if (key == "backend") {
      const auto b = circuits::backend_from_string(value);
      if (!b) bad_spec("unknown backend '" + std::string(value) + "'");
      spec.backend = *b;
    } else if (key == "algorithm") {
      const auto a = algorithm_from_string(value);
      if (!a) bad_spec("unknown algorithm '" + std::string(value) + "'");
      spec.algorithm = *a;
    } else if (key == "method") {
      const auto m = verif_method_from_string(value);
      if (!m) bad_spec("unknown verification method '" + std::string(value) + "'");
      spec.method = *m;
    } else if (key == "corner_filter") {
      if (value != "all" && value != "cold_lv") {
        bad_spec("corner_filter must be 'all' or 'cold_lv', got '" + std::string(value) + "'");
      }
      spec.corner_filter = std::string(value);
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "max_iterations") {
      spec.max_iterations = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "n_opt_samples") {
      spec.n_opt_samples = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "use_ensemble_critic") {
      spec.use_ensemble_critic = parse_bool(key, value);
    } else if (key == "use_mu_sigma") {
      spec.use_mu_sigma = parse_bool(key, value);
    } else if (key == "use_reordering") {
      spec.use_reordering = parse_bool(key, value);
    } else if (key == "max_simulations") {
      spec.budget.max_simulations = parse_u64(key, value);
    } else if (key == "budget_iterations") {
      spec.budget.max_iterations = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "max_wall_seconds") {
      spec.budget.max_wall_seconds = parse_double(key, value);
    } else if (key == "cost_per_simulation") {
      spec.cost.per_simulation = parse_double(key, value);
    } else if (key == "cost_per_rl_iteration") {
      spec.cost.per_rl_iteration = parse_double(key, value);
    } else if (key == "parallelism") {
      spec.engine.parallelism = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "min_parallel_batch") {
      spec.engine.min_parallel_batch = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "cache_capacity") {
      spec.engine.cache_capacity = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "cache_quantum") {
      spec.engine.cache_quantum = parse_double(key, value);
    } else if (key == "dc_warm_start") {
      spec.engine.dc_warm_start = parse_bool(key, value);
    } else if (key == "batched_draws") {
      spec.engine.batched_draws = parse_bool(key, value);
    } else if (key == "adaptive_timestep") {
      spec.engine.adaptive_timestep = parse_bool(key, value);
    } else if (key == "newton_bypass") {
      spec.engine.newton_bypass = parse_bool(key, value);
    } else if (key == "recovery") {
      spec.engine.recovery = parse_bool(key, value);
    } else if (key == "mos_model") {
      if (value != "level1" && value != "ekv") {
        bad_spec("mos_model must be 'level1' or 'ekv', got '" + std::string(value) + "'");
      }
      spec.engine.mos_model = std::string(value);
    } else if (key == "spice_noise") {
      spec.engine.spice_noise = parse_bool(key, value);
    } else if (key == "max_eval_retries") {
      spec.engine.max_eval_retries = static_cast<int>(parse_u64(key, value));
    } else if (key == "eval_deadline_steps") {
      spec.engine.eval_deadline_steps = parse_u64(key, value);
    } else if (key == "degrade_to_behavioral") {
      spec.engine.degrade_to_behavioral = parse_bool(key, value);
    } else if (key == "cache_path") {
      spec.engine.cache_path = std::string(value);
    } else if (key == "surrogate") {
      spec.engine.surrogate = parse_bool(key, value);
    } else if (key == "surrogate_keep") {
      spec.engine.surrogate_keep = parse_double(key, value);
    } else if (key == "surrogate_warmup") {
      spec.engine.surrogate_warmup = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "progress_log") {
      spec.progress_log = parse_bool(key, value);
    } else {
      bad_spec("unknown key '" + std::string(key) + "'");
    }
  }
  return spec;
}

std::unique_ptr<Optimizer> make_optimizer(const RunSpec& spec,
                                          circuits::TestbenchPtr testbench) {
  if (!testbench) throw std::invalid_argument("make_optimizer: null testbench");
  validate_scalars(spec);
  std::unique_ptr<Optimizer> optimizer;
  switch (spec.algorithm) {
    case Algorithm::Glova: {
      GlovaConfig cfg;
      cfg.method = spec.method;
      cfg.corner_filter = spec.corner_filter;
      cfg.n_opt_samples = spec.n_opt_samples;
      cfg.max_iterations = spec.max_iterations;
      cfg.use_ensemble_critic = spec.use_ensemble_critic;
      cfg.use_mu_sigma = spec.use_mu_sigma;
      cfg.use_reordering = spec.use_reordering;
      cfg.seed = spec.seed;
      cfg.cost = spec.cost;
      cfg.engine = spec.engine;
      optimizer = std::make_unique<GlovaOptimizer>(std::move(testbench), cfg);
      break;
    }
    case Algorithm::PvtSizing: {
      baselines::PvtSizingConfig cfg;
      cfg.method = spec.method;
      cfg.corner_filter = spec.corner_filter;
      cfg.n_opt_samples = spec.n_opt_samples;
      cfg.max_iterations = spec.max_iterations;
      cfg.seed = spec.seed;
      cfg.cost = spec.cost;
      cfg.engine = spec.engine;
      optimizer = std::make_unique<baselines::PvtSizingOptimizer>(std::move(testbench), cfg);
      break;
    }
    case Algorithm::RobustAnalog: {
      baselines::RobustAnalogConfig cfg;
      cfg.method = spec.method;
      cfg.corner_filter = spec.corner_filter;
      cfg.n_opt_samples = spec.n_opt_samples;
      cfg.max_iterations = spec.max_iterations;
      cfg.seed = spec.seed;
      cfg.cost = spec.cost;
      cfg.engine = spec.engine;
      optimizer = std::make_unique<baselines::RobustAnalogOptimizer>(std::move(testbench), cfg);
      break;
    }
  }
  optimizer->set_budget(spec.budget);
  if (spec.progress_log) optimizer->add_observer(std::make_shared<ProgressLogObserver>());
  return optimizer;
}

std::unique_ptr<Optimizer> make_optimizer(const RunSpec& spec) {
  spec.validate();
  return make_optimizer(spec, circuits::make_testbench(spec.testcase, spec.backend));
}

}  // namespace glova::core
