// SPICE-netlist testbenches for the Table II circuit blocks.
//
// Each class builds a transistor-level netlist, runs a transient through the
// in-repo MNA engine, and extracts the same metrics its behavioral sibling
// reports, sharing the sibling's sizing/performance specs and mismatch
// layout so the optimization problem is identical across backends:
//   * StrongArmLatchSpice — tail, input pair, cross-coupled inverters,
//     precharge devices, SR-latch load caps; two-phase (evaluate + reset)
//     clocked transient.
//   * FloatingInverterAmplifierSpice — push-pull inverter pair powered from
//     a floating reservoir capacitor behind precharge switches; the
//     integration window and gain are measured from the reservoir droop and
//     the differential output ramp.
//   * DramOcsaSubholeSpice — open-bitline charge sharing from a cell cap
//     through a boosted access device into a cross-coupled sense amplifier
//     with per-SA-share subhole drivers; one transient per data polarity.
// Thermal noise defaults to the analytic budget (mirroring how dynamic
// comparator noise is usually budgeted by hand).  When the engine's
// `spice_noise` knob is on, the SAL and FIA backends instead linearize the
// amplify-phase netlist at its DC operating point and integrate the
// simulated thermal + flicker output noise through spice::noise_analysis()
// (docs/architecture.md#ac-noise), falling back to the analytic budget only
// when the small-signal pass fails.
#pragma once

#include <optional>
#include <utility>

#include "circuits/dram_ocsa.hpp"
#include "circuits/fia.hpp"
#include "circuits/strongarm.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace glova::circuits {

/// Translate a simulator failure report into the engine-facing record
/// (shared by all three SPICE backends so the taxonomy never drifts).
[[nodiscard]] EvaluationFailure evaluation_failure_from(const spice::FailureReport& report);

class StrongArmLatchSpice final : public Testbench {
 public:
  StrongArmLatchSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Batched draw group: all draws of one (x, corner) march through one
  /// lockstep spice::BatchSimulator transient with a single warm-start cache
  /// lookup for the whole group.
  using Testbench::evaluate_draws;
  [[nodiscard]] std::vector<std::vector<double>> evaluate_draws(
      std::span<const double> x, const pdk::PvtCorner& corner,
      std::span<const std::vector<double>> hs,
      std::vector<EvaluationFailure>& failures) const override;
  [[nodiscard]] bool supports_batched_draws() const override { return true; }
  [[nodiscard]] const Testbench* degraded_fallback() const override { return &behavioral_; }

  /// Build the SAL netlist for inspection (Fig. 4 reproduction).  With
  /// `amplify_phase_dc` the clock is held DC-high: the latch then has a
  /// (metastable, symmetric) amplify-phase operating point the small-signal
  /// noise pass can linearize around.
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h,
                                             bool amplify_phase_dc = false) const;

 private:
  /// Metric extraction from a converged transient (shared by the sequential
  /// and batched paths so they cannot drift apart).
  [[nodiscard]] std::vector<double> metrics_from_transient(const spice::TransientResult& res,
                                                           std::span<const double> x,
                                                           const pdk::PvtCorner& corner,
                                                           std::span<const double> h) const;

  /// Simulated input-referred noise from the amplify-phase AC pass; empty
  /// when the operating point or the linear solve does not cooperate.
  [[nodiscard]] std::optional<double> simulated_input_noise(std::span<const double> x,
                                                            const pdk::PvtCorner& corner,
                                                            std::span<const double> h) const;

  std::string name_ = "StrongARM latch (SPICE)";
  StrongArmLatch behavioral_;  // reuses specs, layout, and noise budget
};

class FloatingInverterAmplifierSpice final : public Testbench {
 public:
  FloatingInverterAmplifierSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Batched draw group through one lockstep spice::BatchSimulator transient
  /// (the timebase comes from the nominal analysis, so every draw shares it).
  using Testbench::evaluate_draws;
  [[nodiscard]] std::vector<std::vector<double>> evaluate_draws(
      std::span<const double> x, const pdk::PvtCorner& corner,
      std::span<const std::vector<double>> hs,
      std::vector<EvaluationFailure>& failures) const override;
  [[nodiscard]] bool supports_batched_draws() const override { return true; }
  [[nodiscard]] const Testbench* degraded_fallback() const override { return &behavioral_; }

  /// Build the FIA netlist for inspection (reservoir, switches, inverters).
  /// With `amplify_phase_dc` the floating reservoir is replaced by ideal
  /// rails (switches on, clamps off): the amplify-phase small-signal pass
  /// needs a DC path the floating cap cannot provide.
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h,
                                             bool amplify_phase_dc = false) const;

 private:
  /// Metric extraction from a converged transient (shared by the sequential
  /// and batched paths so they cannot drift apart).
  [[nodiscard]] std::vector<double> metrics_from_transient(const spice::TransientResult& res,
                                                           std::span<const double> x,
                                                           const pdk::PvtCorner& corner,
                                                           std::span<const double> h,
                                                           double t_stop) const;

  /// Simulated input-referred noise from the amplify-phase AC pass; empty
  /// when the operating point or the linear solve does not cooperate.
  [[nodiscard]] std::optional<double> simulated_input_noise(std::span<const double> x,
                                                            const pdk::PvtCorner& corner,
                                                            std::span<const double> h) const;

  std::string name_ = "Floating inverter amplifier (SPICE)";
  FloatingInverterAmplifier behavioral_;  // specs, layout, noise decomposition
};

class DramOcsaSubholeSpice final : public Testbench {
 public:
  DramOcsaSubholeSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Batched draw group: one lockstep spice::BatchSimulator transient per
  /// data polarity (two total for the whole group), each with a single
  /// warm-start cache lookup.
  using Testbench::evaluate_draws;
  [[nodiscard]] std::vector<std::vector<double>> evaluate_draws(
      std::span<const double> x, const pdk::PvtCorner& corner,
      std::span<const std::vector<double>> hs,
      std::vector<EvaluationFailure>& failures) const override;
  [[nodiscard]] bool supports_batched_draws() const override { return true; }
  [[nodiscard]] const Testbench* degraded_fallback() const override { return &behavioral_; }

  /// Build the sensing netlist for one stored data polarity.
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h, bool data_one) const;

 private:
  /// Per-polarity sensing margin and measured read energy from a converged
  /// transient (shared by the sequential and batched paths).
  [[nodiscard]] std::pair<double, double> polarity_margin_energy(
      const spice::TransientResult& res, std::span<const double> x,
      const pdk::PvtCorner& corner, std::span<const double> h, bool data_one) const;

  /// Amortized analytic shared-driver overhead for one mismatch draw.
  [[nodiscard]] double driver_overhead_energy(std::span<const double> x,
                                              const pdk::PvtCorner& corner,
                                              std::span<const double> h) const;

  std::string name_ = "OCSA and SH in DRAM core (SPICE)";
  DramOcsaSubhole behavioral_;  // specs, layout, conditions
};

}  // namespace glova::circuits
