#include "spice/batch.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "spice/counters.hpp"
#include "spice/mos_model.hpp"

namespace glova::spice {

namespace {

[[noreturn]] void congruence_fail(std::size_t lane, const char* what) {
  throw std::invalid_argument("BatchSimulator: lane " + std::to_string(lane) +
                              " is not congruent with lane 0 (" + what + ")");
}

/// Structural congruence: identical node table and element topology; values
/// (resistances, capacitances, W/L, model parameters, waveforms) may differ.
void check_congruent(const Circuit& a, const Circuit& b, std::size_t lane) {
  if (a.node_count() != b.node_count()) congruence_fail(lane, "node count");
  for (NodeId nd = 0; nd < a.node_count(); ++nd) {
    if (a.node_name(nd) != b.node_name(nd)) congruence_fail(lane, "node names");
  }
  if (a.resistors().size() != b.resistors().size()) congruence_fail(lane, "resistor count");
  for (std::size_t i = 0; i < a.resistors().size(); ++i) {
    if (a.resistors()[i].a != b.resistors()[i].a || a.resistors()[i].b != b.resistors()[i].b) {
      congruence_fail(lane, "resistor terminals");
    }
  }
  if (a.capacitors().size() != b.capacitors().size()) congruence_fail(lane, "capacitor count");
  for (std::size_t i = 0; i < a.capacitors().size(); ++i) {
    if (a.capacitors()[i].a != b.capacitors()[i].a || a.capacitors()[i].b != b.capacitors()[i].b) {
      congruence_fail(lane, "capacitor terminals");
    }
  }
  if (a.vsources().size() != b.vsources().size()) congruence_fail(lane, "vsource count");
  for (std::size_t i = 0; i < a.vsources().size(); ++i) {
    if (a.vsources()[i].pos != b.vsources()[i].pos || a.vsources()[i].neg != b.vsources()[i].neg) {
      congruence_fail(lane, "vsource terminals");
    }
  }
  if (a.isources().size() != b.isources().size()) congruence_fail(lane, "isource count");
  for (std::size_t i = 0; i < a.isources().size(); ++i) {
    if (a.isources()[i].pos != b.isources()[i].pos || a.isources()[i].neg != b.isources()[i].neg) {
      congruence_fail(lane, "isource terminals");
    }
  }
  if (a.vcvs().size() != b.vcvs().size()) congruence_fail(lane, "vcvs count");
  for (std::size_t i = 0; i < a.vcvs().size(); ++i) {
    const Vcvs& ea = a.vcvs()[i];
    const Vcvs& eb = b.vcvs()[i];
    if (ea.pos != eb.pos || ea.neg != eb.neg || ea.ctrl_pos != eb.ctrl_pos ||
        ea.ctrl_neg != eb.ctrl_neg) {
      congruence_fail(lane, "vcvs terminals");
    }
  }
  if (a.vccs().size() != b.vccs().size()) congruence_fail(lane, "vccs count");
  for (std::size_t i = 0; i < a.vccs().size(); ++i) {
    const Vccs& ga = a.vccs()[i];
    const Vccs& gb = b.vccs()[i];
    if (ga.pos != gb.pos || ga.neg != gb.neg || ga.ctrl_pos != gb.ctrl_pos ||
        ga.ctrl_neg != gb.ctrl_neg) {
      congruence_fail(lane, "vccs terminals");
    }
  }
  if (a.mosfets().size() != b.mosfets().size()) congruence_fail(lane, "mosfet count");
  for (std::size_t i = 0; i < a.mosfets().size(); ++i) {
    const Mosfet& ma = a.mosfets()[i];
    const Mosfet& mb = b.mosfets()[i];
    if (ma.drain != mb.drain || ma.gate != mb.gate || ma.source != mb.source) {
      congruence_fail(lane, "mosfet terminals");
    }
  }
}

}  // namespace

void BatchWorkspace::prepare(std::size_t lane_count, std::size_t padded, std::size_t unknowns,
                             std::size_t cap_count) {
  lanes = lane_count;
  x_stride = (padded + 7) & ~static_cast<std::size_t>(7);
  rhs_stride = (unknowns + 1 + 7) & ~static_cast<std::size_t>(7);
  cap_stride = cap_count;
  x.assign(lanes * x_stride, 0.0);
  x_prev.assign(lanes * x_stride, 0.0);
  rhs.assign(lanes * rhs_stride, 0.0);
  cap_current.assign(lanes * cap_stride, 0.0);
  if (solvers.size() < lanes) solvers.resize(lanes);
}

BatchWorkspace& thread_local_batch_workspace() {
  thread_local BatchWorkspace workspace;
  return workspace;
}

BatchSimulator::BatchSimulator(std::span<const Circuit> lanes, SimulatorOptions options,
                               BatchWorkspace* workspace)
    : options_(options),
      ws_(workspace != nullptr ? workspace : &thread_local_batch_workspace()) {
  if (lanes.empty()) {
    throw std::invalid_argument("BatchSimulator: at least one lane is required");
  }
  circuits_.reserve(lanes.size());
  for (const Circuit& c : lanes) circuits_.push_back(&c);
  for (std::size_t l = 1; l < lanes.size(); ++l) check_congruent(lanes[0], lanes[l], l);
  plans_.reserve(lanes.size());
  for (const Circuit* c : circuits_) plans_.emplace_back(*c, options_);
  n_ = plans_[0].unknown_count();
  nu_ = plans_[0].unknown_node_count();
  padded_ = plans_[0].padded_size();
  n_nodes_ = circuits_[0]->node_count();
  n_vsrc_ = circuits_[0]->vsources().size();
  n_caps_ = circuits_[0]->capacitors().size();
}

void BatchSimulator::update_caps_lane(std::size_t l, double dt, bool trapezoidal) {
  const std::vector<Capacitor>& caps = circuits_[l]->capacitors();
  const StampPlan& plan = plans_[l];
  double* cc = ws_->cap_current.data() + l * ws_->cap_stride;
  const double* xn = ws_->x.data() + l * ws_->x_stride;
  const double* xw = ws_->x_prev.data() + l * ws_->x_stride;
  for (std::size_t ci = 0; ci < n_caps_; ++ci) {
    const Capacitor& c = caps[ci];
    const double v_now = xn[plan.x_slot(c.a)] - xn[plan.x_slot(c.b)];
    const double v_was = xw[plan.x_slot(c.a)] - xw[plan.x_slot(c.b)];
    if (trapezoidal) {
      cc[ci] = 2.0 * c.farads / dt * (v_now - v_was) - cc[ci];
    } else {
      cc[ci] = c.farads / dt * (v_now - v_was);
    }
  }
}

bool BatchSimulator::rescue_lane_step(std::size_t l, double t_prev, double t,
                                      TransientResult& result, int& attempts,
                                      bool& deadline_hit) {
  // Scalar-path rescue for one lane (see Simulator's rescue_transient_step):
  // rung 2 cuts [t_prev, t] into 2^k backward-Euler substeps solved with the
  // scalar Newton kernel on this lane's plan; rung 3 is a bounded restart
  // from a pseudo-DC point with the sources frozen at t.  Only lane l's
  // slices of the workspace are written, and only on success.
  const RecoveryPolicy& rp = options_.recovery;
  SimulatorWorkspace& sws = thread_local_workspace();
  const StampPlan& plan = plans_[l];
  const std::vector<Capacitor>& caps = circuits_[l]->capacitors();
  const double* xp = ws_->x_prev.data() + l * ws_->x_stride;
  const double* cc = ws_->cap_current.data() + l * ws_->cap_stride;
  std::vector<double> x_sub(padded_);
  std::vector<double> x_sub_prev(padded_);
  std::vector<double> cap_sub(n_caps_);
  for (int cut = 1; cut <= rp.max_step_cuts; ++cut) {
    ++attempts;
    const int k = 1 << cut;
    std::copy(xp, xp + padded_, x_sub.begin());
    x_sub_prev = x_sub;
    std::copy(cc, cc + n_caps_, cap_sub.begin());
    bool sub_ok = true;
    double t_a = t_prev;
    for (int j = 1; j <= k; ++j) {
      const double t_b = j == k ? t : t_prev + (t - t_prev) * j / k;
      AssemblyInputs sub;
      sub.mode = AnalysisMode::Transient;
      sub.time = t_b;
      sub.dt = t_b - t_a;
      sub.trapezoidal = false;
      sub.x_prev = x_sub_prev;
      sub.cap_current_prev = cap_sub;
      int sub_iterations = 0;
      const bool solved = newton_solve_plan(plans_[l], options_, sws, sub, x_sub, sub_iterations);
      result.newton_iterations += static_cast<std::uint64_t>(sub_iterations);
      if (lane_deadline(result)) {
        deadline_hit = true;
        return false;
      }
      if (!solved) {
        sub_ok = false;
        break;
      }
      for (std::size_t ci = 0; ci < n_caps_; ++ci) {
        const Capacitor& c = caps[ci];
        const double v_now = x_sub[plan.x_slot(c.a)] - x_sub[plan.x_slot(c.b)];
        const double v_was = x_sub_prev[plan.x_slot(c.a)] - x_sub_prev[plan.x_slot(c.b)];
        cap_sub[ci] = c.farads / sub.dt * (v_now - v_was);
      }
      x_sub_prev = x_sub;
      t_a = t_b;
    }
    if (sub_ok) {
      std::copy(x_sub.begin(), x_sub.end(), ws_->x.data() + l * ws_->x_stride);
      std::copy(cap_sub.begin(), cap_sub.end(), ws_->cap_current.data() + l * ws_->cap_stride);
      return true;
    }
  }
  for (int restart = 0; restart < rp.dc_restart_attempts; ++restart) {
    ++attempts;
    OpResult op =
        operating_point_plan(*circuits_[l], plans_[l], options_, sws, nullptr, nullptr, t);
    result.newton_iterations += static_cast<std::uint64_t>(op.iterations);
    if (lane_deadline(result)) {
      deadline_hit = true;
      return false;
    }
    if (!op.converged) continue;
    double* xl = ws_->x.data() + l * ws_->x_stride;
    std::fill(xl, xl + padded_, 0.0);
    for (NodeId nd = 1; nd < n_nodes_; ++nd) xl[plan.x_slot(nd)] = op.node_voltages[nd];
    for (std::size_t si = 0; si < n_vsrc_; ++si) {
      const std::size_t slot = plan.vsource_branch_slot(si);
      if (slot != StampPlan::kNoSlot) xl[slot] = op.vsource_currents[si];
    }
    std::fill(ws_->cap_current.data() + l * ws_->cap_stride,
              ws_->cap_current.data() + l * ws_->cap_stride + n_caps_, 0.0);
    return true;
  }
  return false;
}

void BatchSimulator::solve_step(double time, double dt, bool trapezoidal) {
  const std::size_t lanes = circuits_.size();
  const std::size_t n = n_;
  const std::size_t nu = nu_;

  ok_.assign(lanes, 0);
  done_.assign(lanes, 0);
  fail_.assign(lanes, 0);
  iter_spent_.assign(lanes, 0);

  // Deterministic fault injection: one solve index per live lane, consumed
  // in lane order so indices line up with N sequential scalar solves.
  fault_site_.assign(lanes, nullptr);
  if (const FaultPlan* fp = thread_fault_plan(); fp != nullptr) {
    for (std::size_t l = 0; l < lanes; ++l) {
      if (alive_[l]) fault_site_[l] = fp->match(fp->cursor++);
    }
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    if (!alive_[l]) continue;
    AssemblyInputs in;
    in.mode = AnalysisMode::Transient;
    in.time = time;
    in.dt = dt;
    in.trapezoidal = trapezoidal;
    in.x_prev = std::span<const double>(ws_->x_prev.data() + l * ws_->x_stride, padded_);
    in.cap_current_prev = std::span<const double>(ws_->cap_current.data() + l * ws_->cap_stride,
                                                  ws_->cap_stride);
    plans_[l].begin_solve(in);
    plans_[l].load_pinned(ws_->lane_x(l));
    if (fault_site_[l] != nullptr && fault_site_[l]->kind == FaultPlan::Kind::NonConverge) {
      // Mirrors newton_solve_plan: the assembly state is valid (residual
      // probes work) but the solve burns its budget and fails.
      fail_[l] = 1;
      iter_spent_[l] = options_.max_newton_iterations;
    }
    if (options_.newton_bypass) {
      // Chord stall detection is scoped to one solve: the first residual of
      // a new timestep is always "fresh", never compared against the tiny
      // converged residual the previous solve ended on.
      res_prev_[l] = std::numeric_limits<double>::infinity();
    }
  }

  const std::size_t n_dev = plans_[0].mos_stamps().size();

  if (!options_.newton_bypass) {
    // --- full Newton, lockstep across lanes --------------------------------
    for (int it = 0; it < options_.max_newton_iterations; ++it) {
      act_.clear();
      for (std::size_t l = 0; l < lanes; ++l) {
        if (alive_[l] && !done_[l] && !fail_[l]) act_.push_back(l);
      }
      if (act_.empty()) break;

      // Assembly: per-lane linear load, then the device-major companion pass.
      act_g_.clear();
      act_rhs_.clear();
      act_x_.clear();
      for (const std::size_t l : act_) {
        DenseMatrix& g = ws_->solvers[l].matrix(n);
        plans_[l].load_static(g, ws_->lane_rhs(l));
        act_g_.push_back(g.data());
        act_rhs_.push_back(ws_->rhs.data() + l * ws_->rhs_stride);
        act_x_.push_back(ws_->x.data() + l * ws_->x_stride);
      }
      for (std::size_t di = 0; di < n_dev; ++di) {
        for (std::size_t k = 0; k < act_.size(); ++k) {
          const StampPlan::MosStamp& ms = plans_[act_[k]].mos_stamps()[di];
          const double* __restrict xl = act_x_[k];
          double* __restrict gd = act_g_[k];
          double* __restrict rd = act_rhs_[k];
          const double vg = xl[ms.xg];
          const double vd = xl[ms.xd];
          const double vs = xl[ms.xs];
          const MosLinearization lin =
              mos_linearize(options_.mos_model, *ms.params, ms.w_over_l, vg, vd, vs);
          const double i_eq = lin.i_ds - ms.mg * (lin.d_vg * vg) - ms.md * (lin.d_vd * vd) -
                              ms.ms * (lin.d_vs * vs);
          gd[ms.j_dg] += lin.d_vg;
          gd[ms.j_dd] += lin.d_vd;
          gd[ms.j_ds] += lin.d_vs;
          rd[ms.rhs_d] -= i_eq;
          gd[ms.j_sg] -= lin.d_vg;
          gd[ms.j_sd] -= lin.d_vd;
          gd[ms.j_ss] -= lin.d_vs;
          rd[ms.rhs_s] += i_eq;
        }
      }

      // Solve + damped update per lane (identical to newton_solve_plan).
      for (std::size_t k = 0; k < act_.size(); ++k) {
        const std::size_t l = act_[k];
        if (it == 0 && fault_site_[l] != nullptr) {
          if (fault_site_[l]->kind == FaultPlan::Kind::NanStamp) {
            act_rhs_[k][0] = std::numeric_limits<double>::quiet_NaN();
          } else if (fault_site_[l]->kind == FaultPlan::Kind::SingularMatrix) {
            std::fill_n(act_g_[k], n, 0.0);  // zero row 0: factorization fails
          }
        }
        if (!ws_->solvers[l].factor_solve_in_place(std::span<double>(act_rhs_[k], n),
                                                   ws_->x_new)) {
          fail_[l] = 1;
          iter_spent_[l] = it + 1;
          continue;
        }
        double* __restrict xl = act_x_[k];
        const std::vector<double>& x_new = ws_->x_new;
        double max_delta = 0.0;
        for (std::size_t i = 0; i < nu; ++i) {
          const double delta =
              std::clamp(x_new[i] - xl[i], -options_.max_step_voltage, options_.max_step_voltage);
          max_delta = std::max(max_delta, std::abs(delta));
          xl[i] += delta;
        }
        for (std::size_t i = nu; i < n; ++i) xl[i] = x_new[i];
        bool finite = std::isfinite(max_delta);
        for (std::size_t i = 0; finite && i < n; ++i) finite = std::isfinite(xl[i]);
        if (!finite) {
          // Same early bail as newton_solve_plan: a poisoned iterate can
          // never converge, so don't burn the iteration budget on it.
          fail_[l] = 1;
          iter_spent_[l] = it + 1;
          continue;
        }
        if (max_delta < options_.vtol) {
          done_[l] = 1;
          ok_[l] = 1;
          iter_spent_[l] = it + 1;
          if (fault_site_[l] != nullptr &&
              fault_site_[l]->kind == FaultPlan::Kind::SlowConverge) {
            iter_spent_[l] += fault_site_[l]->extra_iterations;
          }
        }
      }
    }
  } else {
    // --- chord Newton on retained factors (LU bypass) ----------------------
    const double res_ok = 1e3 * options_.abstol;
    for (int it = 0; it < options_.max_newton_iterations; ++it) {
      act_.clear();
      for (std::size_t l = 0; l < lanes; ++l) {
        if (alive_[l] && !done_[l] && !fail_[l]) act_.push_back(l);
      }
      if (act_.empty()) break;

      for (const std::size_t l : act_) {
        double* __restrict xl = ws_->x.data() + l * ws_->x_stride;
        double* rd = ws_->rhs.data() + l * ws_->rhs_stride;
        const std::span<const double> xs(xl, padded_);

        bool full = has_factors_[l] == 0;
        if (it == 0 && fault_site_[l] != nullptr &&
            (fault_site_[l]->kind == FaultPlan::Kind::NanStamp ||
             fault_site_[l]->kind == FaultPlan::Kind::SingularMatrix)) {
          full = true;  // assembly faults need a full stamp to land on
        }
        if (!full) {
          plans_[l].residual(xs, std::span<double>(rd, n + 1));
          double rn = 0.0;
          for (std::size_t i = 0; i < n; ++i) rn = std::max(rn, std::abs(rd[i]));
          if (rn >= 0.5 * res_prev_[l]) {
            full = true;  // chord stalled: the frozen Jacobian is too stale
          } else {
            ws_->solvers[l].solve_into(std::span<const double>(rd, n), ws_->x_new);
            ++bypass_solves_;
            const std::vector<double>& delta = ws_->x_new;
            double max_delta = 0.0;
            for (std::size_t i = 0; i < nu; ++i) {
              const double step = std::clamp(-delta[i], -options_.max_step_voltage,
                                             options_.max_step_voltage);
              max_delta = std::max(max_delta, std::abs(step));
              xl[i] += step;
            }
            for (std::size_t i = nu; i < n; ++i) xl[i] -= delta[i];
            res_prev_[l] = rn;
            if (max_delta < options_.vtol) {
              if (rn < res_ok) {
                done_[l] = 1;
                ok_[l] = 1;
                iter_spent_[l] = it + 1;
              } else {
                // A tiny chord step with a large residual means the frozen
                // factors, not the iterate, have converged: refactor.
                has_factors_[l] = 0;
              }
            }
            continue;
          }
        }
        // Full stamp + refactor; solve_into(companion rhs) yields the same
        // iterate the scalar path's fused factor+solve would.
        plans_[l].stamp(xs, ws_->solvers[l].matrix(n), std::span<double>(rd, n + 1));
        if (it == 0 && fault_site_[l] != nullptr) {
          if (fault_site_[l]->kind == FaultPlan::Kind::NanStamp) {
            rd[0] = std::numeric_limits<double>::quiet_NaN();
          } else if (fault_site_[l]->kind == FaultPlan::Kind::SingularMatrix) {
            std::fill_n(ws_->solvers[l].matrix(n).data(), n, 0.0);
          }
        }
        if (!ws_->solvers[l].factor_in_place()) {
          fail_[l] = 1;
          iter_spent_[l] = it + 1;
          continue;
        }
        has_factors_[l] = 1;
        ++bypass_refactors_;
        res_prev_[l] = std::numeric_limits<double>::infinity();
        ws_->solvers[l].solve_into(std::span<const double>(rd, n), ws_->x_new);
        const std::vector<double>& x_new = ws_->x_new;
        double max_delta = 0.0;
        for (std::size_t i = 0; i < nu; ++i) {
          const double delta =
              std::clamp(x_new[i] - xl[i], -options_.max_step_voltage, options_.max_step_voltage);
          max_delta = std::max(max_delta, std::abs(delta));
          xl[i] += delta;
        }
        for (std::size_t i = nu; i < n; ++i) xl[i] = x_new[i];
        bool finite = std::isfinite(max_delta);
        for (std::size_t i = 0; finite && i < n; ++i) finite = std::isfinite(xl[i]);
        if (!finite) {
          fail_[l] = 1;
          iter_spent_[l] = it + 1;
          continue;
        }
        if (max_delta < options_.vtol) {
          done_[l] = 1;
          ok_[l] = 1;
          iter_spent_[l] = it + 1;
          if (fault_site_[l] != nullptr &&
              fault_site_[l]->kind == FaultPlan::Kind::SlowConverge) {
            iter_spent_[l] += fault_site_[l]->extra_iterations;
          }
        }
      }
    }
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    if (alive_[l] && !done_[l] && !fail_[l]) {
      fail_[l] = 1;
      iter_spent_[l] = options_.max_newton_iterations;
    }
  }
}

std::vector<TransientResult> BatchSimulator::transient(const TransientSpec& spec,
                                                       const OpResult* dc_warm_start) {
  const std::size_t lanes = circuits_.size();
  std::vector<TransientResult> results(lanes);
  if (spec.dt <= 0.0 || spec.t_stop <= 0.0) {
    for (TransientResult& r : results) {
      r.failure.stage = FailureStage::Setup;
      r.failure.message = "transient: dt and t_stop must be positive";
      r.error = r.failure.to_string();
    }
    return results;
  }
  note_batch_group(lanes);
  bypass_solves_ = 0;
  bypass_refactors_ = 0;

  ws_->prepare(lanes, padded_, n_, n_caps_);
  alive_.assign(lanes, 1);
  has_factors_.assign(lanes, 0);
  res_prev_.assign(lanes, std::numeric_limits<double>::infinity());

  // --- per-lane initial state: DC (rolling warm-start seed) or UIC --------
  SimulatorWorkspace& sws = thread_local_workspace();
  OpResult rolling;
  const OpResult* seed = dc_warm_start;
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::span<double> xl = ws_->lane_x(l);
    const StampPlan& plan = plans_[l];
    if (spec.use_ic) {
      for (const auto& [name, value] : spec.initial_conditions) {
        const NodeId node = circuits_[l]->find_node(name);
        if (node != Circuit::ground() && plan.node_is_unknown(node)) {
          xl[plan.x_slot(node)] = value;
        }
      }
      for (const Capacitor& c : circuits_[l]->capacitors()) {
        if (c.initial_voltage && c.b == Circuit::ground() && c.a != Circuit::ground() &&
            plan.node_is_unknown(c.a)) {
          xl[plan.x_slot(c.a)] = *c.initial_voltage;
        }
      }
      continue;
    }
    OpResult op = operating_point_plan(*circuits_[l], plans_[l], options_, sws, seed,
                                       &results[l].failure);
    if (!op.converged) {
      results[l].error = results[l].failure.to_string();
      alive_[l] = 0;
      continue;
    }
    if (!op.warm_started) {
      // Mirrors the sequential per-thread cache: a cold solve replaces the
      // stored seed, a successful warm start leaves it untouched.
      rolling = op;
      seed = &rolling;
    }
    for (NodeId nd = 1; nd < n_nodes_; ++nd) xl[plan.x_slot(nd)] = op.node_voltages[nd];
    for (std::size_t si = 0; si < n_vsrc_; ++si) {
      const std::size_t slot = plan.vsource_branch_slot(si);
      if (slot != StampPlan::kNoSlot) xl[slot] = op.vsource_currents[si];
    }
    results[l].dc_iterations = op.iterations;
    results[l].dc_op = std::move(op);
  }

  // --- recording setup (node ids are congruent; resolve once on lane 0) ---
  std::vector<NodeId> record_nodes;
  if (spec.record.empty()) {
    for (NodeId nd = 1; nd < n_nodes_; ++nd) record_nodes.push_back(nd);
  } else {
    for (const std::string& name : spec.record) {
      record_nodes.push_back(circuits_[0]->find_node(name));
    }
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    if (!alive_[l]) continue;
    results[l].traces.reserve(record_nodes.size() + n_vsrc_);
    for (const NodeId nd : record_nodes) {
      results[l].traces.push_back(Trace{circuits_[l]->node_name(nd), {}});
    }
    for (const VoltageSource& v : circuits_[l]->vsources()) {
      results[l].traces.push_back(Trace{"I(" + v.name + ")", {}});
    }
  }

  std::vector<double> vsrc_i(n_vsrc_, 0.0);
  const auto record_lane = [&](std::size_t l, double time, bool recover_currents) {
    TransientResult& r = results[l];
    const double* xl = ws_->x.data() + l * ws_->x_stride;
    const StampPlan& plan = plans_[l];
    r.times.push_back(time);
    std::size_t ti = 0;
    for (const NodeId nd : record_nodes) r.traces[ti++].values.push_back(xl[plan.x_slot(nd)]);
    if (n_vsrc_ > 0) {
      if (recover_currents) {
        plan.vsource_currents(std::span<const double>(xl, padded_),
                              std::span<const double>(ws_->cap_current.data() + l * ws_->cap_stride,
                                                      ws_->cap_stride),
                              time, 1.0, vsrc_i);
      } else {
        std::fill(vsrc_i.begin(), vsrc_i.end(), 0.0);
      }
      for (std::size_t si = 0; si < n_vsrc_; ++si) r.traces[ti++].values.push_back(vsrc_i[si]);
    }
  };

  for (std::size_t l = 0; l < lanes; ++l) {
    if (alive_[l]) record_lane(l, 0.0, /*recover_currents=*/!spec.use_ic);
  }

  ws_->x_prev = ws_->x;

  const auto any_alive = [&] {
    for (std::size_t l = 0; l < lanes; ++l) {
      if (alive_[l]) return true;
    }
    return false;
  };
  const auto copy_lane = [&](std::vector<double>& dst, const std::vector<double>& src,
                             std::size_t l) {
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(l * ws_->x_stride),
              src.begin() + static_cast<std::ptrdiff_t>(l * ws_->x_stride + padded_),
              dst.begin() + static_cast<std::ptrdiff_t>(l * ws_->x_stride));
  };

  if (!options_.adaptive_timestep) {
    // --- fixed uniform grid, lockstep (bit-identical to N scalar runs) ----
    const auto n_steps = static_cast<std::size_t>(std::ceil(spec.t_stop / spec.dt));
    double t_prev = 0.0;
    for (std::size_t step = 1; step <= n_steps && any_alive(); ++step) {
      double t = static_cast<double>(step) * spec.dt;
      if (step == n_steps || t > spec.t_stop) t = spec.t_stop;
      const double dt = t - t_prev;
      if (dt <= 0.0) break;
      const bool trap = step > 2;

      solve_step(t, dt, trap);

      for (std::size_t l = 0; l < lanes; ++l) {
        if (!alive_[l]) continue;
        results[l].newton_iterations += static_cast<std::uint64_t>(iter_spent_[l]);
        bool deadline_hit = lane_deadline(results[l]);
        bool rescued = false;
        if (!ok_[l]) {
          FailureReport& report = results[l].failure;
          // Capture the worst-residual row of the failed iterate now, while
          // the lane's plan still holds this solve's assembly.
          note_worst_residual(*circuits_[l], plans_[l],
                              std::span<const double>(ws_->x.data() + l * ws_->x_stride, padded_),
                              report);
          if (!deadline_hit && options_.recovery.enabled) {
            rescued = rescue_lane_step(l, t_prev, t, results[l], report.attempts, deadline_hit);
            if (rescued) note_recovered_transient();
          }
          if (!rescued) {
            report.stage = deadline_hit ? FailureStage::Deadline : FailureStage::TransientNewton;
            report.time = t;
            if (deadline_hit) note_deadline_abort();
            results[l].error = report.to_string();
            alive_[l] = 0;
            continue;
          }
        } else if (deadline_hit) {
          results[l].failure.stage = FailureStage::Deadline;
          results[l].failure.time = t;
          note_deadline_abort();
          results[l].error = results[l].failure.to_string();
          alive_[l] = 0;
          continue;
        }
        // A rescued lane's companion state was advanced by its substeps (or
        // reset by the DC restart); only the plain path integrates over dt.
        if (!rescued) update_caps_lane(l, dt, trap);
        record_lane(l, t, /*recover_currents=*/true);
        ++results[l].steps_accepted;
        results[l].dt_trace.push_back(dt);
        copy_lane(ws_->x_prev, ws_->x, l);
      }
      t_prev = t;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      if (alive_[l]) results[l].ok = true;
    }
    note_bypass_solves(bypass_solves_, bypass_refactors_);
    return results;
  }

  // --- LTE-adaptive union grid ---------------------------------------------
  // The scalar controller (see Simulator::transient) run once for the whole
  // batch: every lane solves the same tentative step, the worst per-lane LTE
  // ratio decides accept/reject, and all live lanes advance together, so the
  // batch shares a single time axis.
  const double dt_min = spec.dt * options_.dt_min_factor;
  const double dt_max = spec.dt * options_.dt_max_factor;

  std::vector<double> breaks;
  for (const Circuit* c : circuits_) {
    for (const VoltageSource& v : c->vsources()) v.waveform.append_breakpoints(spec.t_stop, breaks);
    for (const CurrentSource& i : c->isources()) i.waveform.append_breakpoints(spec.t_stop, breaks);
  }
  breaks.push_back(spec.t_stop);
  std::sort(breaks.begin(), breaks.end());
  {
    std::size_t kept = 0;
    for (const double t : breaks) {
      if (kept != 0 && t - breaks[kept - 1] < dt_min) continue;
      breaks[kept++] = t;
    }
    breaks.resize(kept);
    if (breaks.back() != spec.t_stop) breaks.back() = spec.t_stop;
  }

  // Accepted-history for the divided-difference LTE estimate: times are
  // shared across the batch (one union grid), node voltages are lane-strided.
  std::array<std::vector<double>, 3> hist_x;
  for (auto& h : hist_x) h.assign(lanes * nu_, 0.0);
  std::array<double, 3> hist_t{};
  std::size_t hist_n = 0;
  const auto push_history = [&](double t) {
    if (hist_n == 3) {
      std::vector<double> recycled = std::move(hist_x[0]);
      hist_x[0] = std::move(hist_x[1]);
      hist_x[1] = std::move(hist_x[2]);
      hist_x[2] = std::move(recycled);
      hist_t[0] = hist_t[1];
      hist_t[1] = hist_t[2];
      --hist_n;
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!alive_[l]) continue;
      const double* xp = ws_->x_prev.data() + l * ws_->x_stride;
      std::copy(xp, xp + nu_, hist_x[hist_n].data() + l * nu_);
    }
    hist_t[hist_n] = t;
    ++hist_n;
  };
  push_history(0.0);

  const auto lane_lte_ratio = [&](std::size_t l, double t_new, bool trap) {
    const std::size_t need = trap ? 3 : 2;
    if (hist_n < need) return 0.0;
    const std::size_t m = need;
    double ts[4];
    const double* hx[3];
    for (std::size_t k = 0; k < need; ++k) {
      ts[k] = hist_t[hist_n - need + k];
      hx[k] = hist_x[hist_n - need + k].data() + l * nu_;
    }
    ts[m] = t_new;
    const double dt_new = t_new - ts[m - 1];
    const double* xn = ws_->x.data() + l * ws_->x_stride;
    double worst = 0.0;
    for (std::size_t i = 0; i < nu_; ++i) {
      double f[4];
      for (std::size_t k = 0; k < need; ++k) f[k] = hx[k][i];
      f[m] = xn[i];
      for (std::size_t order = 1; order <= m; ++order) {
        for (std::size_t k = m; k >= order; --k) {
          f[k] = (f[k] - f[k - 1]) / (ts[k] - ts[k - order]);
        }
      }
      const double lte = trap ? 0.5 * dt_new * dt_new * dt_new * std::abs(f[m])
                              : dt_new * dt_new * std::abs(f[m]);
      const double tol =
          options_.lte_reltol * std::max(std::abs(xn[i]), std::abs(hx[m - 1][i])) +
          options_.lte_abstol;
      worst = std::max(worst, lte / tol);
    }
    return worst;
  };

  double t_cur = 0.0;
  double dt = std::clamp(spec.dt, dt_min, dt_max);
  std::size_t bp_i = 0;
  std::size_t since_reset = 0;
  std::uint64_t accepted_union = 0;
  std::uint64_t rejected_union = 0;

  while (t_cur < spec.t_stop && any_alive()) {
    while (bp_i < breaks.size() && breaks[bp_i] <= t_cur) ++bp_i;
    if (bp_i >= breaks.size()) break;  // unreachable: t_stop is a breakpoint
    const double bp = breaks[bp_i];

    dt = std::clamp(dt, dt_min, dt_max);
    double t_next = t_cur + dt;
    if (t_next > bp - dt_min) t_next = bp;
    const double dt_eff = t_next - t_cur;
    const bool trap = since_reset >= 2;

    for (std::size_t l = 0; l < lanes; ++l) {
      if (alive_[l]) copy_lane(ws_->x, ws_->x_prev, l);
    }
    solve_step(t_next, dt_eff, trap);

    bool any_fail = false;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!alive_[l]) continue;
      results[l].newton_iterations += static_cast<std::uint64_t>(iter_spent_[l]);
      if (lane_deadline(results[l])) {
        FailureReport& report = results[l].failure;
        report.stage = FailureStage::Deadline;
        report.time = t_next;
        if (!ok_[l]) {
          note_worst_residual(*circuits_[l], plans_[l],
                              std::span<const double>(ws_->x.data() + l * ws_->x_stride, padded_),
                              report);
        }
        note_deadline_abort();
        results[l].error = report.to_string();
        alive_[l] = 0;
        continue;
      }
      if (!ok_[l]) any_fail = true;
    }
    if (!any_alive()) break;
    if (any_fail) {
      if (dt_eff <= dt_min * (1.0 + 1e-9)) {
        // No smaller step to retreat to: last recovery rung per failing lane
        // is a bounded restart from a pseudo-DC point with the sources
        // frozen at t_next; unrescued lanes are lost while the rest of the
        // batch carries on with this (solved) step.
        rescued_.assign(lanes, 0);
        bool any_rescued = false;
        for (std::size_t l = 0; l < lanes; ++l) {
          if (!alive_[l] || ok_[l]) continue;
          FailureReport& report = results[l].failure;
          report.time = t_next;
          note_worst_residual(*circuits_[l], plans_[l],
                              std::span<const double>(ws_->x.data() + l * ws_->x_stride, padded_),
                              report);
          bool deadline_hit = false;
          bool rescued = false;
          if (options_.recovery.enabled) {
            for (int restart = 0; restart < options_.recovery.dc_restart_attempts; ++restart) {
              ++report.attempts;
              OpResult op = operating_point_plan(*circuits_[l], plans_[l], options_, sws, nullptr,
                                                 nullptr, t_next);
              results[l].newton_iterations += static_cast<std::uint64_t>(op.iterations);
              if (lane_deadline(results[l])) {
                deadline_hit = true;
                break;
              }
              if (!op.converged) continue;
              double* xl = ws_->x.data() + l * ws_->x_stride;
              std::fill(xl, xl + padded_, 0.0);
              for (NodeId nd = 1; nd < n_nodes_; ++nd) {
                xl[plans_[l].x_slot(nd)] = op.node_voltages[nd];
              }
              for (std::size_t si = 0; si < n_vsrc_; ++si) {
                const std::size_t slot = plans_[l].vsource_branch_slot(si);
                if (slot != StampPlan::kNoSlot) xl[slot] = op.vsource_currents[si];
              }
              double* cc = ws_->cap_current.data() + l * ws_->cap_stride;
              std::fill(cc, cc + n_caps_, 0.0);
              rescued = true;
              note_recovered_transient();
              break;
            }
          }
          if (!rescued) {
            report.stage = deadline_hit ? FailureStage::Deadline : FailureStage::Timestep;
            if (deadline_hit) note_deadline_abort();
            results[l].error = report.to_string();
            alive_[l] = 0;
            continue;
          }
          rescued_[l] = 1;
          any_rescued = true;
        }
        if (!any_alive()) break;
        if (any_rescued) {
          // Accept the step for every live lane (rescued lanes' companion
          // state was reset by the restart, so they skip the cap update) and
          // reset the shared controller exactly as a breakpoint does.
          for (std::size_t l = 0; l < lanes; ++l) {
            if (!alive_[l]) continue;
            if (!rescued_[l]) update_caps_lane(l, dt_eff, trap);
            record_lane(l, t_next, /*recover_currents=*/true);
            ++results[l].steps_accepted;
            results[l].dt_trace.push_back(dt_eff);
            copy_lane(ws_->x_prev, ws_->x, l);
          }
          ++accepted_union;
          t_cur = t_next;
          since_reset = 0;
          hist_n = 0;
          push_history(t_next);
          dt = std::clamp(spec.dt, dt_min, dt_max);
          continue;
        }
      } else {
        for (std::size_t l = 0; l < lanes; ++l) {
          if (alive_[l]) ++results[l].steps_rejected;
        }
        ++rejected_union;
        dt = std::max(dt_min, dt_eff * options_.dt_shrink_limit);
        continue;
      }
    }

    double ratio = 0.0;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (alive_[l]) ratio = std::max(ratio, lane_lte_ratio(l, t_next, trap));
    }
    if (ratio > 1.0 && dt_eff > dt_min * (1.0 + 1e-9)) {
      for (std::size_t l = 0; l < lanes; ++l) {
        if (alive_[l]) ++results[l].steps_rejected;
      }
      ++rejected_union;
      const double p = trap ? 3.0 : 2.0;
      const double shrink = std::clamp(options_.lte_safety * std::pow(ratio, -1.0 / p),
                                       options_.dt_shrink_limit, 0.9);
      dt = std::max(dt_min, dt_eff * shrink);
      continue;
    }

    for (std::size_t l = 0; l < lanes; ++l) {
      if (!alive_[l]) continue;
      update_caps_lane(l, dt_eff, trap);
      record_lane(l, t_next, /*recover_currents=*/true);
      ++results[l].steps_accepted;
      results[l].dt_trace.push_back(dt_eff);
      copy_lane(ws_->x_prev, ws_->x, l);
    }
    ++accepted_union;
    t_cur = t_next;

    if (t_next == bp) {
      since_reset = 0;
      hist_n = 0;
      push_history(t_next);
      dt = std::clamp(spec.dt, dt_min, dt_max);
    } else {
      ++since_reset;
      push_history(t_next);
      const double p = trap ? 3.0 : 2.0;
      const double grow = ratio > 0.0
                              ? std::clamp(options_.lte_safety * std::pow(ratio, -1.0 / p),
                                           options_.dt_shrink_limit, options_.dt_grow_limit)
                              : options_.dt_grow_limit;
      dt = dt_eff * grow;
    }
  }

  note_lte_steps(accepted_union, rejected_union);
  for (std::size_t l = 0; l < lanes; ++l) {
    if (alive_[l]) results[l].ok = true;
  }
  note_bypass_solves(bypass_solves_, bypass_refactors_);
  return results;
}

}  // namespace glova::spice
