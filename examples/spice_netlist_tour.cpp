// Tour of the SPICE engine: parse a text netlist, run a transient, measure;
// then build the transistor-level StrongARM latch and watch it decide, and
// visit the other two Table II netlists (FIA reservoir, DRAM OCSA sensing).
#include <cstdio>

#include "circuits/spice_backend.hpp"
#include "spice/measure.hpp"
#include "spice/parser.hpp"
#include "spice/simulator.hpp"

int main() {
  using namespace glova;

  // --- 1. a classic RC lowpass from text, HSPICE-style ---
  const std::string netlist = R"(* RC lowpass step response
VIN in 0 PULSE(0 0.9 0.1n 1p 1p 20n)
R1 in out 10k
C1 out 0 100f
.tran 2p 6n
.end
)";
  const spice::ParsedNetlist parsed = spice::parse_netlist(netlist);
  spice::Simulator sim(parsed.circuit);
  const spice::TransientResult rc = sim.transient(*parsed.tran);
  if (!rc.ok) {
    printf("RC transient failed: %s\n", rc.error.c_str());
    return 1;
  }
  const auto t63 = spice::first_crossing(rc.times, rc.trace("out"), 0.9 * 0.632,
                                         spice::CrossDirection::Rising);
  printf("RC lowpass: tau(meas) = %.3f ns, tau(RC) = 1.000 ns\n",
         t63 ? (*t63 - 0.1e-9) * 1e9 : -1.0);

  // --- 2. the StrongARM latch at transistor level ---
  circuits::StrongArmLatchSpice sal;
  const auto& sz = sal.sizing();
  std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05,
                             0.01};
  const auto x = sz.denormalize(x01);
  const auto ckt = sal.build_netlist(x, pdk::typical_corner(), {});
  printf("\nSAL netlist: %zu nodes, %zu transistors\n", ckt.node_count(), ckt.mosfets().size());

  spice::Simulator sal_sim(ckt);
  spice::TransientSpec spec;
  spec.t_stop = 6e-9;
  spec.dt = 2e-12;
  spec.record = {"out_a", "out_b"};
  const auto res = sal_sim.transient(spec);
  if (!res.ok) {
    printf("SAL transient failed: %s\n", res.error.c_str());
    return 1;
  }
  printf("\nregeneration waveforms (sampled):\n%-8s %-10s %-10s\n", "t (ns)", "out_a", "out_b");
  for (double t = 0.0; t <= 4.0e-9; t += 0.4e-9) {
    printf("%-8.2f %-10.4f %-10.4f\n", t * 1e9,
           spice::value_at(res.times, res.trace("out_a"), t),
           spice::value_at(res.times, res.trace("out_b"), t));
  }
  const auto metrics = sal.evaluate(x, pdk::typical_corner(), {});
  printf("\nextracted: power=%.2f uW, set delay=%.3f ns, reset delay=%.3f ns\n", metrics[0] * 1e6,
         metrics[1] * 1e9, metrics[2] * 1e9);

  // --- 3. the other Table II netlists, one evaluation each ---
  circuits::FloatingInverterAmplifierSpice fia;
  const std::vector<double> fia_x01 = {0.15, 0.4, 0.3, 0.2, 0.02, 0.01};
  const auto fia_x = fia.sizing().denormalize(fia_x01);
  const auto fia_ckt = fia.build_netlist(fia_x, pdk::typical_corner(), {});
  const auto fia_m = fia.evaluate(fia_x, pdk::typical_corner(), {});
  printf("\nFIA netlist: %zu nodes, %zu transistors, floating C_res = %.1f fF\n",
         fia_ckt.node_count(), fia_ckt.mosfets().size(),
         fia_x[circuits::FiaSizing::kCRes] * 1e15);
  printf("extracted: energy=%.3f pJ, input-referred error=%.2f mV\n", fia_m[0] * 1e12,
         fia_m[1] * 1e3);

  circuits::DramOcsaSubholeSpice dram;
  const std::vector<double> dram_x01 = {0.7, 0.6, 0.8, 0.3, 0.4, 0.6, 0.8, 0.7, 0.9, 0.2, 0.8,
                                        0.9};
  const auto dram_x = dram.sizing().denormalize(dram_x01);
  const auto dram_ckt = dram.build_netlist(dram_x, pdk::typical_corner(), {}, /*data_one=*/true);
  const auto dram_m = dram.evaluate(dram_x, pdk::typical_corner(), {});
  printf("\nDRAM OCSA netlist: %zu nodes, %zu transistors (one transient per polarity)\n",
         dram_ckt.node_count(), dram_ckt.mosfets().size());
  printf("extracted: dVD0=%.1f mV, dVD1=%.1f mV, energy=%.2f fJ\n", dram_m[0] * 1e3,
         dram_m[1] * 1e3, dram_m[2] * 1e15);
  return 0;
}
