// Fig. 2 reproduction: the GLOVA workflow trace.
//
// Runs one GLOVA optimization on the StrongARM latch under C-MC_L and prints
// the step-by-step counters that make up the framework diagram: TuRBO
// initialization, per-iteration worst-corner sampling (steps 1-3), mu-sigma
// gate decisions (step 4), full-verification attempts (step 5), and agent
// updates (step 6).
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/optimizer.hpp"

using namespace glova;

int main() {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C_MCL;
  cfg.seed = 7;
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  core::GlovaOptimizer optimizer(tb, cfg);
  const core::GlovaResult res = optimizer.run();

  printf("Fig. 2 — GLOVA workflow trace (SAL, C-MC_L, seed 7)\n\n");
  printf("Initialization: TuRBO spent %llu typical-condition simulations\n",
         static_cast<unsigned long long>(res.turbo_evaluations));
  printf("%-5s %-12s %-12s %-12s %-8s %-8s %-10s\n", "iter", "r_worst", "E[Q]",
         "E+b1*sigma", "gate", "verify", "sims");
  std::size_t gates = 0;
  std::size_t verifications = 0;
  for (const core::IterationTrace& t : res.trace) {
    gates += t.mu_sigma_pass ? 1 : 0;
    verifications += t.attempted_verification ? 1 : 0;
    printf("%-5zu %-12.4f %-12.4f %-12.4f %-8s %-8s %-10llu\n", t.iteration, t.reward_worst,
           t.critic_mean, t.critic_bound, t.mu_sigma_pass ? "pass" : "block",
           t.attempted_verification ? "yes" : "-", static_cast<unsigned long long>(t.sims_total));
  }
  printf("\nSummary: %zu iterations, %zu mu-sigma passes, %zu verification attempts, "
         "success=%s, %llu total simulations\n",
         res.rl_iterations, gates, verifications, res.success ? "yes" : "no",
         static_cast<unsigned long long>(res.n_simulations));
  return res.success ? 0 : 1;
}
