#include "spice/parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/text.hpp"

namespace glova::spice {

namespace {

/// Split a line into tokens; '(' ')' ',' and '=' become separators so
/// "PULSE(0 0.9 0 10p)" and "W=1u" tokenize cleanly, but we keep '='
/// attached semantics by returning "key" "=" "value" triples merged later.
std::vector<std::string> tokenize(const std::string& line) {
  std::string cleaned;
  cleaned.reserve(line.size());
  for (const char c : line) {
    if (c == '(' || c == ')' || c == ',') {
      cleaned.push_back(' ');
    } else if (c == '=') {
      cleaned.push_back(' ');
      cleaned.push_back('=');
      cleaned.push_back(' ');
    } else {
      cleaned.push_back(c);
    }
  }
  std::istringstream is(cleaned);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error("netlist line " + std::to_string(line_no) + ": " + message);
}

}  // namespace

double parse_spice_number(const std::string& token) {
  const std::string t = to_lower(token);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw std::runtime_error("bad number: " + token);
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return value;
  if (suffix.starts_with("meg")) return value * 1e6;
  switch (suffix.front()) {
    case 't': return value * 1e12;
    case 'g': return value * 1e9;
    case 'k': return value * 1e3;
    case 'm': return value * 1e-3;
    case 'u': return value * 1e-6;
    case 'n': return value * 1e-9;
    case 'p': return value * 1e-12;
    case 'f': return value * 1e-15;
    default: break;
  }
  // Trailing unit names like "5v" / "10s" / "1a" are tolerated.
  if (suffix == "v" || suffix == "s" || suffix == "a" || suffix == "hz" || suffix == "ohm") {
    return value;
  }
  throw std::runtime_error("bad unit suffix: " + token);
}

ParsedNetlist parse_netlist(const std::string& text, const pdk::PvtCorner& corner) {
  ParsedNetlist out;
  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_no = 0;
  bool first_content_line = true;
  bool ended = false;

  while (std::getline(stream, raw_line)) {
    ++line_no;
    // Strip comments: full-line '*' and inline '$' / ';'.
    std::string line = raw_line;
    if (const auto dollar = line.find('$'); dollar != std::string::npos) line.resize(dollar);
    if (const auto semi = line.find(';'); semi != std::string::npos) line.resize(semi);
    // Trim.
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    while (!line.empty() && is_space(line.front())) line.erase(line.begin());
    while (!line.empty() && is_space(line.back())) line.pop_back();
    if (line.empty()) continue;
    if (line.front() == '*') continue;
    if (ended) continue;

    if (first_content_line && line.front() != '.' && !std::isalpha(line.front()) ) {
      first_content_line = false;
      continue;
    }
    first_content_line = false;

    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string head = to_lower(tokens.front());

    // Gather key=value parameters from the tail of the token list.
    const auto find_param = [&](const std::string& key) -> std::optional<double> {
      const std::string k = to_lower(key);
      for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (to_lower(tokens[i]) == k && tokens[i + 1] == "=") {
          return parse_spice_number(tokens[i + 2]);
        }
      }
      return std::nullopt;
    };

    try {
      switch (head.front()) {
        case '.': {
          if (head == ".end") {
            ended = true;
          } else if (head == ".tran") {
            if (tokens.size() < 3) fail(line_no, ".tran needs step and stop");
            TransientSpec spec;
            spec.dt = parse_spice_number(tokens[1]);
            spec.t_stop = parse_spice_number(tokens[2]);
            if (tokens.size() > 3 && to_lower(tokens[3]) == "uic") spec.use_ic = true;
            if (out.tran) {
              spec.initial_conditions = out.tran->initial_conditions;
              if (out.tran->use_ic) spec.use_ic = true;
            }
            out.tran = spec;
          } else if (head == ".ic") {
            // .ic V(node)=value ... — after tokenization: "v" "node" "=" "value"
            TransientSpec spec = out.tran.value_or(TransientSpec{});
            for (std::size_t i = 0; i + 3 < tokens.size() + 1;) {
              if (i + 3 < tokens.size() && to_lower(tokens[i]) == "v" && tokens[i + 2] == "=") {
                spec.initial_conditions[tokens[i + 1]] = parse_spice_number(tokens[i + 3]);
                i += 4;
              } else {
                ++i;
              }
            }
            spec.use_ic = true;
            out.tran = spec;
          } else if (head == ".title") {
            out.title = line.substr(6);
          }
          // Unknown dot-cards are ignored (matches common simulator behaviour).
          break;
        }
        case 'r': {
          if (tokens.size() < 4) fail(line_no, "resistor needs 2 nodes and a value");
          out.circuit.add_resistor(tokens[0], out.circuit.node(tokens[1]),
                                   out.circuit.node(tokens[2]), parse_spice_number(tokens[3]));
          break;
        }
        case 'c': {
          if (tokens.size() < 4) fail(line_no, "capacitor needs 2 nodes and a value");
          std::optional<double> ic;
          if (const auto v = find_param("IC")) ic = *v;
          out.circuit.add_capacitor(tokens[0], out.circuit.node(tokens[1]),
                                    out.circuit.node(tokens[2]), parse_spice_number(tokens[3]), ic);
          break;
        }
        case 'v':
        case 'i': {
          if (tokens.size() < 4) fail(line_no, "source needs 2 nodes and a value");
          Waveform w = Waveform::dc(0.0);
          const std::string kind = tokens.size() > 3 ? to_lower(tokens[3]) : "";
          if (kind == "pulse") {
            if (tokens.size() < 10) fail(line_no, "PULSE needs 7 values");
            w = Waveform::pulse(parse_spice_number(tokens[4]), parse_spice_number(tokens[5]),
                                parse_spice_number(tokens[6]), parse_spice_number(tokens[7]),
                                parse_spice_number(tokens[8]), parse_spice_number(tokens[9]),
                                tokens.size() > 10 ? parse_spice_number(tokens[10]) : 0.0);
          } else if (kind == "pwl") {
            std::vector<double> ts, vs;
            for (std::size_t i = 4; i + 1 < tokens.size(); i += 2) {
              ts.push_back(parse_spice_number(tokens[i]));
              vs.push_back(parse_spice_number(tokens[i + 1]));
            }
            w = Waveform::pwl(std::move(ts), std::move(vs));
          } else if (kind == "sin") {
            if (tokens.size() < 7) fail(line_no, "SIN needs offset amplitude freq");
            w = Waveform::sine(parse_spice_number(tokens[4]), parse_spice_number(tokens[5]),
                               parse_spice_number(tokens[6]),
                               tokens.size() > 7 ? parse_spice_number(tokens[7]) : 0.0);
          } else if (kind == "dc") {
            if (tokens.size() < 5) fail(line_no, "DC needs a value");
            w = Waveform::dc(parse_spice_number(tokens[4]));
          } else {
            w = Waveform::dc(parse_spice_number(tokens[3]));
          }
          if (head.front() == 'v') {
            out.circuit.add_vsource(tokens[0], out.circuit.node(tokens[1]),
                                    out.circuit.node(tokens[2]), std::move(w));
          } else {
            out.circuit.add_isource(tokens[0], out.circuit.node(tokens[1]),
                                    out.circuit.node(tokens[2]), std::move(w));
          }
          break;
        }
        case 'e': {
          if (tokens.size() < 6) fail(line_no, "VCVS needs 4 nodes and a gain");
          out.circuit.add_vcvs(tokens[0], out.circuit.node(tokens[1]), out.circuit.node(tokens[2]),
                               out.circuit.node(tokens[3]), out.circuit.node(tokens[4]),
                               parse_spice_number(tokens[5]));
          break;
        }
        case 'g': {
          if (tokens.size() < 6) fail(line_no, "VCCS needs 4 nodes and a transconductance");
          out.circuit.add_vccs(tokens[0], out.circuit.node(tokens[1]), out.circuit.node(tokens[2]),
                               out.circuit.node(tokens[3]), out.circuit.node(tokens[4]),
                               parse_spice_number(tokens[5]));
          break;
        }
        case 'm': {
          // M<name> drain gate source [bulk] NMOS|PMOS W=.. L=..
          if (tokens.size() < 5) fail(line_no, "MOSFET needs 3 nodes and a model");
          std::string model;
          std::size_t node_count = 0;
          for (std::size_t i = 1; i < tokens.size(); ++i) {
            const std::string t = to_lower(tokens[i]);
            if (t == "nmos" || t == "pmos") {
              model = t;
              node_count = i - 1;
              break;
            }
          }
          if (model.empty()) fail(line_no, "MOSFET model must be NMOS or PMOS");
          if (node_count < 3) fail(line_no, "MOSFET needs at least drain/gate/source");
          const double w = find_param("W").value_or(1e-6);
          const double l = find_param("L").value_or(100e-9);
          const bool pmos = model == "pmos";
          out.circuit.add_mosfet(tokens[0], out.circuit.node(tokens[1]),
                                 out.circuit.node(tokens[2]), out.circuit.node(tokens[3]),
                                 pdk::mos_params(pmos, corner, l), w, l);
          break;
        }
        default:
          fail(line_no, "unsupported element: " + tokens[0]);
      }
    } catch (const std::runtime_error&) {
      throw;
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
  }
  return out;
}

}  // namespace glova::spice
