#include "pdk/mos_params.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace glova::pdk {

const TechnologyNominal& technology_28nm() {
  static const TechnologyNominal tech{};
  return tech;
}

MosParams mos_params(bool is_pmos, const PvtCorner& corner, double length, double delta_vth,
                     double delta_beta_rel) {
  const TechnologyNominal& tech = technology_28nm();
  const CornerFactors factors =
      corner.process_predefined ? corner_factors(corner.process) : CornerFactors{};

  MosParams p;
  p.is_pmos = is_pmos;

  const double t_ratio = corner.temp_k() / units::kRoomTemperatureK;
  const double mobility_scale = std::pow(t_ratio, -tech.mobility_exp);
  const double vth_temp_shift = tech.vth_tc * (corner.temp_k() - units::kRoomTemperatureK);

  if (is_pmos) {
    p.vth = tech.vth_p + factors.vth_p_shift + vth_temp_shift + delta_vth;
    p.kp = tech.kp_p * factors.kp_p_mult * mobility_scale * (1.0 + delta_beta_rel);
  } else {
    p.vth = tech.vth_n + factors.vth_n_shift + vth_temp_shift + delta_vth;
    p.kp = tech.kp_n * factors.kp_n_mult * mobility_scale * (1.0 + delta_beta_rel);
  }
  p.vth = std::max(0.05, p.vth);  // keep devices enhancement-mode
  p.kp = std::max(1e-6, p.kp);
  p.lambda = tech.lambda0 * tech.l_min / std::max(length, tech.l_min);
  p.temp_k = corner.temp_k();
  p.kf = is_pmos ? tech.kf_p : tech.kf_n;
  p.gamma_n = tech.gamma_noise;
  return p;
}

double square_law_id(const MosParams& p, double w_over_l, double vgs, double vds) {
  const double vov = vgs - p.vth;
  if (vov <= 0.0 || vds <= 0.0) return 0.0;
  const double k = p.kp * w_over_l;
  if (vds < vov) {
    // triode
    return k * (vov - 0.5 * vds) * vds * (1.0 + p.lambda * vds);
  }
  // saturation
  return 0.5 * k * vov * vov * (1.0 + p.lambda * vds);
}

double ekv_overdrive(double vov, double temp_k) {
  const double v_char = 2.0 * kEkvSlopeFactor * units::thermal_voltage(temp_k);
  // Numerically safe softplus.
  const double z = vov / v_char;
  double softplus = 0.0;
  if (z > 30.0) {
    softplus = z;
  } else {
    softplus = std::log1p(std::exp(z));
  }
  return v_char * softplus;
}

double ekv_overdrive_slope(double vov, double temp_k) {
  const double v_char = 2.0 * kEkvSlopeFactor * units::thermal_voltage(temp_k);
  const double z = vov / v_char;
  if (z > 30.0) return 1.0;
  if (z < -30.0) return std::exp(z);
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double ekv_id(const MosParams& p, double w_over_l, double vgs, double vds, double temp_k) {
  if (vds < 0.0) {
    // Symmetric device: swap source/drain roles, flip the current sign.
    return -ekv_id(p, w_over_l, vgs - vds, -vds, temp_k);
  }
  const double vov_eff = ekv_overdrive(vgs - p.vth, temp_k);
  const double k = p.kp * w_over_l;
  if (vds < vov_eff) {
    return k * (vov_eff - 0.5 * vds) * vds * (1.0 + p.lambda * vds);
  }
  return 0.5 * k * vov_eff * vov_eff * (1.0 + p.lambda * vds);
}

double ekv_gm(const MosParams& p, double w_over_l, double vgs, double vds, double temp_k) {
  if (vds < 0.0) {
    return -ekv_gm(p, w_over_l, vgs - vds, -vds, temp_k);
  }
  const double vov_eff = ekv_overdrive(vgs - p.vth, temp_k);
  const double slope = ekv_overdrive_slope(vgs - p.vth, temp_k);
  const double k = p.kp * w_over_l;
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov_eff) {
    return k * vds * clm * slope;  // triode
  }
  return k * vov_eff * clm * slope;  // saturation
}

}  // namespace glova::pdk
