// SI unit helpers and physical constants.  All internal computation is in
// base SI units (V, A, s, F, W, J, m); these helpers keep testbench code and
// spec tables readable.
#pragma once

namespace glova::units {

// Scale factors (multiply to convert into base SI).
inline constexpr double kilo = 1e3;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;
inline constexpr double pico = 1e-12;
inline constexpr double femto = 1e-15;

// Physical constants.
inline constexpr double kBoltzmann = 1.380649e-23;  // J/K
inline constexpr double kZeroCelsiusInKelvin = 273.15;
inline constexpr double kRoomTemperatureK = 300.0;
inline constexpr double kElectronCharge = 1.602176634e-19;  // C

/// Convert Celsius to Kelvin.
[[nodiscard]] constexpr double celsius_to_kelvin(double celsius) {
  return celsius + kZeroCelsiusInKelvin;
}

/// Thermal voltage kT/q at a temperature in Kelvin.
[[nodiscard]] constexpr double thermal_voltage(double kelvin) {
  return kBoltzmann * kelvin / kElectronCharge;
}

// User-defined literals for readable sizings: 0.28_um, 5.5_pF, 4.0_ns ...
namespace literals {
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_uW(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }
}  // namespace literals

}  // namespace glova::units
