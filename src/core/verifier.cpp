#include "core/verifier.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/mu_sigma.hpp"
#include "core/reordering.hpp"
#include "core/reward.hpp"
#include "pdk/variation.hpp"

namespace glova::core {

Verifier::Verifier(EvaluationEngine& service, OperationalConfig config, VerifierOptions options)
    : service_(service), config_(std::move(config)), options_(options) {}

VerificationOutcome Verifier::verify(std::span<const double> x_phys,
                                     const rl::LastWorstBuffer& last_worst, Rng& rng,
                                     const CornerPresample* reuse) {
  const std::uint64_t sims_at_start = service_.simulation_count();
  const circuits::PerformanceSpec& spec = service_.testbench().performance();
  VerificationOutcome out;

  const std::size_t k = config_.corner_count();
  const std::size_t n_pre = std::min<std::size_t>(config_.n_opt, config_.n_verif);

  // Mismatch layout is design-dependent (Sigma_Local(x), Eq. 3).
  const pdk::MismatchLayout layout =
      config_.has_mismatch() ? service_.testbench().mismatch_layout(x_phys, config_.global_mismatch)
                             : pdk::MismatchLayout{};

  const auto sample_conditions = [&](std::size_t n) -> std::vector<std::vector<double>> {
    if (!config_.has_mismatch()) return std::vector<std::vector<double>>(n);  // nominal h
    return pdk::sample_mismatch_set(layout, n, rng, config_.verification_sampling_mode());
  };

  // ---------- Phase 1: mu-sigma gate over N' pre-samples per corner ----------
  std::vector<std::size_t> phase1_order;
  if (options_.use_reordering) {
    phase1_order = last_worst.corners_worst_first();
  } else {
    phase1_order.resize(k);
    for (std::size_t j = 0; j < k; ++j) phase1_order[j] = j;
  }

  std::vector<double> t_scores(k, 0.0);
  std::vector<std::vector<double>> rho(k);                    // Eq. (9) per corner
  std::vector<std::vector<std::vector<double>>> pre_hs(k);    // N' conditions per corner
  const auto finish = [&](bool passed) {
    out.passed = passed;
    out.sims_used = service_.simulation_count() - sims_at_start;
    return out;
  };

  for (const std::size_t j : phase1_order) {
    std::vector<std::vector<double>> hs;
    std::vector<std::vector<double>> metrics;
    if (reuse != nullptr && reuse->corner_index == j && !reuse->metrics.empty()) {
      hs = reuse->hs;
      metrics = reuse->metrics;  // already simulated during optimization
    } else {
      hs = sample_conditions(n_pre);
      metrics = service_.evaluate_batch(x_phys, config_.corners[j], hs);
    }
    const double corner_worst = worst_reward_of(spec, metrics);
    out.corner_worst_rewards.emplace_back(j, corner_worst);

    const MuSigmaResult ms = mu_sigma_evaluate(spec, metrics, options_.beta2);
    // An actually-failing pre-sample fails verification regardless of the
    // statistical gate; the gate additionally rejects distributions whose
    // mu + beta2*sigma tail crosses a constraint.
    const bool any_hard_failure = corner_worst != kSuccessReward;
    if (any_hard_failure || (options_.use_mu_sigma && !ms.pass)) {
      out.failed_in_phase1 = true;
      return finish(false);
    }
    t_scores[j] = ms.t_score;
    if (config_.has_mismatch() && !hs.empty() && !hs.front().empty()) {
      std::vector<double> g(metrics.size());
      for (std::size_t n = 0; n < metrics.size(); ++n) g[n] = total_degradation(spec, metrics[n]);
      rho[j] = correlation_vector(hs, g);
    }
    pre_hs[j] = std::move(hs);
  }

  // ---------- Phase 2: full verification of the remaining N - N' ----------
  const std::size_t n_rest = config_.n_verif - n_pre;
  if (n_rest == 0) {
    out.corners_completed = k;
    return finish(true);
  }

  std::vector<std::size_t> phase2_order;
  if (options_.use_reordering) {
    phase2_order = order_descending(t_scores);  // most degraded corners first
  } else {
    phase2_order.resize(k);
    for (std::size_t j = 0; j < k; ++j) phase2_order[j] = j;
  }

  for (const std::size_t j : phase2_order) {
    std::vector<std::vector<double>> hs = sample_conditions(n_rest);

    if (options_.use_reordering && !rho[j].empty()) {
      std::vector<double> scores(hs.size());
      for (std::size_t n = 0; n < hs.size(); ++n) scores[n] = h_score(hs[n], rho[j]);
      const std::vector<std::size_t> order = order_descending(scores);
      std::vector<std::vector<double>> sorted;
      sorted.reserve(hs.size());
      for (const std::size_t n : order) sorted.push_back(std::move(hs[n]));
      hs = std::move(sorted);
    }

    // Simulate in parallel chunks ("maximum available resources"); the chunk
    // containing the first failure still counts — those runs were launched.
    double corner_worst = kSuccessReward;
    for (std::size_t begin = 0; begin < hs.size(); begin += options_.parallel_chunk) {
      const std::size_t end = std::min(hs.size(), begin + options_.parallel_chunk);
      const std::vector<std::vector<double>> chunk(hs.begin() + static_cast<std::ptrdiff_t>(begin),
                                                   hs.begin() + static_cast<std::ptrdiff_t>(end));
      const auto metrics = service_.evaluate_batch(x_phys, config_.corners[j], chunk);
      const double w = worst_reward_of(spec, metrics);
      corner_worst = std::min(corner_worst, w);
      if (w != kSuccessReward) {
        out.corner_worst_rewards.emplace_back(j, corner_worst);
        return finish(false);
      }
    }
    out.corner_worst_rewards.emplace_back(j, corner_worst);
    ++out.corners_completed;
  }
  return finish(true);
}

}  // namespace glova::core
