// Quickstart: size the StrongARM latch so it meets its specs at every PVT
// corner, with five lines of setup.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: describe the run as a
// core::RunSpec, build a session with core::make_optimizer, run it, inspect
// the result.
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/run_spec.hpp"

int main() {
  using namespace glova;

  // 1. A run description: the StrongARM latch with the fast behavioral
  //    evaluator, corner verification (30 PVT conditions), defaults from the
  //    paper (beta1 = -3, beta2 = 4, batch 10, ensemble 5).
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.algorithm = core::Algorithm::Glova;
  spec.method = core::VerifMethod::C;
  spec.seed = 2025;

  // 2. A session.  make_optimizer validates the spec (try backend = Spice on
  //    FIA: the error lists the runnable combinations) and wires the
  //    algorithm; the spec round-trips through text for queues and logs.
  printf("spec: %s\n\n", spec.to_string().c_str());
  const std::unique_ptr<core::Optimizer> optimizer = core::make_optimizer(spec);

  // 3. Run.  run() is a thin loop over step(); drive step() yourself for
  //    incremental control (see fia_energy_design.cpp).
  const core::GlovaResult result = optimizer->run();

  // 4. Inspect.
  printf("success      : %s\n", result.success ? "yes" : "no");
  printf("RL iterations: %zu\n", result.rl_iterations);
  printf("simulations  : %llu (TuRBO init used %llu)\n",
         static_cast<unsigned long long>(result.n_simulations),
         static_cast<unsigned long long>(result.turbo_evaluations));
  if (result.success) {
    const circuits::TestbenchPtr bench = circuits::make_testbench(spec.testcase, spec.backend);
    printf("\nverified sizing (physical units):\n");
    const auto& sizing = bench->sizing();
    for (std::size_t i = 0; i < sizing.dimension(); ++i) {
      const bool is_cap = sizing.names[i].front() == 'C';
      printf("  %-8s = %.4g %s\n", sizing.names[i].c_str(),
             result.x_phys_final[i] * (is_cap ? 1e12 : 1e6), is_cap ? "pF" : "um");
    }
    printf("\nmetrics at the typical corner:\n");
    const auto metrics = bench->evaluate(result.x_phys_final, pdk::typical_corner(), {});
    const auto& perf = bench->performance();
    for (std::size_t i = 0; i < perf.count(); ++i) {
      const auto& m = perf.metrics[i];
      printf("  %-12s = %8.3f %-3s (target %s %g %s)\n", m.name.c_str(),
             metrics[i] / m.unit_scale, m.unit.c_str(),
             m.sense == circuits::Sense::MinimizeBelow ? "<=" : ">=", m.bound / m.unit_scale,
             m.unit.c_str());
    }
  }
  return result.success ? 0 : 1;
}
