// SPICE-netlist testbenches for the Table II circuit blocks.
//
// Each class builds a transistor-level netlist, runs a transient through the
// in-repo MNA engine, and extracts the same metrics its behavioral sibling
// reports, sharing the sibling's sizing/performance specs and mismatch
// layout so the optimization problem is identical across backends:
//   * StrongArmLatchSpice — tail, input pair, cross-coupled inverters,
//     precharge devices, SR-latch load caps; two-phase (evaluate + reset)
//     clocked transient.
//   * FloatingInverterAmplifierSpice — push-pull inverter pair powered from
//     a floating reservoir capacitor behind precharge switches; the
//     integration window and gain are measured from the reservoir droop and
//     the differential output ramp.
//   * DramOcsaSubholeSpice — open-bitline charge sharing from a cell cap
//     through a boosted access device into a cross-coupled sense amplifier
//     with per-SA-share subhole drivers; one transient per data polarity.
// Thermal noise stays an analytic budget everywhere — the engine has no
// small-signal noise analysis — which mirrors how dynamic comparator noise
// is usually budgeted by hand.
#pragma once

#include "circuits/dram_ocsa.hpp"
#include "circuits/fia.hpp"
#include "circuits/strongarm.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace glova::circuits {

class StrongArmLatchSpice final : public Testbench {
 public:
  StrongArmLatchSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Build the SAL netlist for inspection (Fig. 4 reproduction).
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const;

 private:
  std::string name_ = "StrongARM latch (SPICE)";
  StrongArmLatch behavioral_;  // reuses specs, layout, and noise budget
};

class FloatingInverterAmplifierSpice final : public Testbench {
 public:
  FloatingInverterAmplifierSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Build the FIA netlist for inspection (reservoir, switches, inverters).
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const;

 private:
  std::string name_ = "Floating inverter amplifier (SPICE)";
  FloatingInverterAmplifier behavioral_;  // specs, layout, noise decomposition
};

class DramOcsaSubholeSpice final : public Testbench {
 public:
  DramOcsaSubholeSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Build the sensing netlist for one stored data polarity.
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h, bool data_one) const;

 private:
  std::string name_ = "OCSA and SH in DRAM core (SPICE)";
  DramOcsaSubhole behavioral_;  // specs, layout, conditions
};

}  // namespace glova::circuits
