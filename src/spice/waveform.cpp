#include "spice/waveform.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace glova::spice {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::Dc;
  w.v1_ = value;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise, double fall, double width,
                         double period) {
  if (rise < 0.0 || fall < 0.0 || width < 0.0) {
    throw std::invalid_argument("Waveform::pulse: negative timing");
  }
  Waveform w;
  w.kind_ = Kind::Pulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = rise > 0.0 ? rise : 1e-15;
  w.fall_ = fall > 0.0 ? fall : 1e-15;
  w.width_ = width;
  w.period_ = period;
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  if (times.size() != values.size() || times.empty()) {
    throw std::invalid_argument("Waveform::pwl: need equal, non-empty point lists");
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] <= times[i - 1]) throw std::invalid_argument("Waveform::pwl: times not increasing");
  }
  Waveform w;
  w.kind_ = Kind::Pwl;
  w.times_ = std::move(times);
  w.values_ = std::move(values);
  return w;
}

Waveform Waveform::sine(double offset, double amplitude, double freq_hz, double delay) {
  Waveform w;
  w.kind_ = Kind::Sine;
  w.v1_ = offset;
  w.v2_ = amplitude;
  w.freq_ = freq_hz;
  w.delay_ = delay;
  return w;
}

void Waveform::append_breakpoints(double t_stop, std::vector<double>& out) const {
  constexpr std::size_t kMaxPoints = 4096;
  const auto push = [&](double t) {
    if (t > 0.0 && t < t_stop) out.push_back(t);
  };
  switch (kind_) {
    case Kind::Dc:
      return;
    case Kind::Pulse: {
      const double corners[4] = {0.0, rise_, rise_ + width_, rise_ + width_ + fall_};
      std::size_t emitted = 0;
      for (double base = delay_; base < t_stop && emitted < kMaxPoints; emitted += 4) {
        for (const double c : corners) push(base + c);
        if (period_ <= 0.0) break;  // single pulse
        base += period_;
      }
      return;
    }
    case Kind::Pwl:
      for (const double t : times_) push(t);
      return;
    case Kind::Sine:
      push(delay_);
      return;
  }
}

double Waveform::value(double time) const {
  switch (kind_) {
    case Kind::Dc:
      return v1_;
    case Kind::Pulse: {
      if (time < delay_) return v1_;
      double t = time - delay_;
      if (period_ > 0.0) t = std::fmod(t, period_);
      if (t < rise_) return v1_ + (v2_ - v1_) * (t / rise_);
      t -= rise_;
      if (t < width_) return v2_;
      t -= width_;
      if (t < fall_) return v2_ + (v1_ - v2_) * (t / fall_);
      return v1_;
    }
    case Kind::Pwl: {
      if (time <= times_.front()) return values_.front();
      if (time >= times_.back()) return values_.back();
      std::size_t hi = 1;
      while (times_[hi] < time) ++hi;
      const double frac = (time - times_[hi - 1]) / (times_[hi] - times_[hi - 1]);
      return values_[hi - 1] + frac * (values_[hi] - values_[hi - 1]);
    }
    case Kind::Sine: {
      if (time < delay_) return v1_;
      return v1_ + v2_ * std::sin(2.0 * std::numbers::pi * freq_ * (time - delay_));
    }
  }
  return 0.0;
}

}  // namespace glova::spice
