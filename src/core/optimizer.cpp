#include "core/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "common/state_io.hpp"
#include "core/mu_sigma.hpp"
#include "core/reward.hpp"
#include "opt/turbo.hpp"
#include "pdk/variation.hpp"

namespace glova::core {

struct GlovaOptimizer::Session {
  EvaluationEngine service;
  Rng rng;
  Rng mc_rng{0};
  rl::WorstCaseReplayBuffer buffer;
  rl::LastWorstBuffer last_worst;
  std::unique_ptr<rl::RiskSensitiveAgent> agent;
  std::unique_ptr<Verifier> verifier;
  std::vector<double> x_last;
  std::size_t iter = 0;

  Session(circuits::TestbenchPtr testbench, const GlovaConfig& config, std::size_t corner_count)
      : service(std::move(testbench), config.engine),
        rng(config.seed),
        last_worst(corner_count) {}
};

GlovaOptimizer::GlovaOptimizer(circuits::TestbenchPtr testbench, GlovaConfig config)
    : testbench_(std::move(testbench)),
      config_(config),
      op_config_(OperationalConfig::for_method(config.method, config.n_opt_samples,
                                               config.corner_filter)) {}

GlovaOptimizer::~GlovaOptimizer() = default;

const EvaluationEngine* GlovaOptimizer::engine_ptr() const {
  return s_ ? &s_->service : nullptr;
}

rl::AgentConfig GlovaOptimizer::agent_config() const {
  rl::AgentConfig agent_cfg;
  agent_cfg.critic.ensemble_size = config_.use_ensemble_critic ? config_.ensemble_size : 1;
  agent_cfg.critic.beta1 = config_.use_ensemble_critic ? config_.beta1 : 0.0;
  agent_cfg.critic.hidden = config_.hidden;
  agent_cfg.hidden = config_.hidden;
  agent_cfg.batch_size = config_.batch_size;
  return agent_cfg;
}

VerifierOptions GlovaOptimizer::verifier_options() const {
  VerifierOptions verif_opts;
  verif_opts.beta2 = config_.beta2;
  verif_opts.use_mu_sigma = config_.use_mu_sigma;
  verif_opts.use_reordering = config_.use_reordering;
  return verif_opts;
}

void GlovaOptimizer::do_save_state(std::ostream& os) const {
  const Session& s = *s_;
  os << "glova " << s.iter << '\n';
  os << "rng " << s.rng.save() << '\n';
  os << "mc_rng " << s.mc_rng.save() << '\n';
  state::write_doubles(os, "x_last", s.x_last);
  s.buffer.save(os);
  s.last_worst.save(os);
  s.agent->save(os);
  s.service.save_state(os);
}

void GlovaOptimizer::do_load_state(std::istream& is) {
  s_ = std::make_unique<Session>(testbench_, config_, op_config_.corner_count());
  Session& s = *s_;
  s.iter = state::parse_u64(state::expect_line(is, "glova"), "GLOVA iteration");
  s.rng.restore(state::expect_line(is, "rng"));
  s.mc_rng.restore(state::expect_line(is, "mc_rng"));
  s.x_last = state::read_doubles(is, "x_last");
  s.buffer.load(is);
  s.last_worst.load(is);
  // The constructor seed stream is a placeholder: agent->load overwrites
  // every weight, moment, and RNG word with the saved state.
  const std::size_t p = testbench_->sizing().dimension();
  s.agent = std::make_unique<rl::RiskSensitiveAgent>(p, agent_config(), s.rng.split(0xA6E7));
  s.agent->load(is);
  s.verifier = std::make_unique<Verifier>(s.service, op_config_, verifier_options());
  s.service.load_state(is);
}

void GlovaOptimizer::do_start() {
  s_ = std::make_unique<Session>(testbench_, config_, op_config_.corner_count());
  Session& s = *s_;
  EvaluationEngine& service = s.service;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const std::size_t p = sizing.dimension();

  // ---------------- Step 0: TuRBO initial sampling (typical condition) ----
  opt::TurboConfig turbo_cfg;
  turbo_cfg.n_init = std::max<std::size_t>(8, p);
  opt::Turbo turbo(p, turbo_cfg, s.rng.split(0x7B0));
  const pdk::PvtCorner typical = pdk::typical_corner();
  const circuits::PerformanceSpec& spec = testbench_->performance();
  // Always collect at least the warmup set: even when the first sample is
  // already typical-feasible, the replay buffer needs a diverse initial
  // dataset for the critic.
  const std::size_t turbo_min = std::min<std::size_t>(turbo_cfg.n_init + 4, config_.turbo_budget);
  while (service.simulation_count() < config_.turbo_budget) {
    const auto points = turbo.ask(1);
    std::vector<double> values;
    values.reserve(points.size());
    for (const auto& x01 : points) {
      const auto x = sizing.denormalize(x01);
      values.push_back(reward_from_metrics(spec, service.evaluate_one(x, typical, {})));
    }
    turbo.tell(points, values);
    if (turbo.best_value() >= kSuccessReward && service.simulation_count() >= turbo_min) break;
  }
  result_.turbo_evaluations = service.simulation_count();
  log_info("GLOVA init: TuRBO best reward ", turbo.best_value(), " after ",
           result_.turbo_evaluations, " typical-condition simulations");

  // ---------------- Initial dataset: simulate across all corners ----------
  std::vector<double> x_best = turbo.best_point();
  if (x_best.empty()) x_best = s.rng.uniform_vector(p, 0.0, 1.0);
  {
    // The best initial design is simulated under every PVT corner; its worst
    // rewards initialize the last-worst-case buffer and the replay buffer.
    const auto x = sizing.denormalize(x_best);
    Rng stream = s.rng.split(0x1717);
    double overall_worst = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < op_config_.corner_count(); ++j) {
      const auto hs = op_config_.sample_conditions(*testbench_, x, op_config_.n_opt, stream);
      const auto metrics = service.evaluate_batch(x, op_config_.corners[j], hs);
      const double w = worst_reward_of(spec, metrics);
      s.last_worst.update(j, w);
      overall_worst = std::min(overall_worst, w);
    }
    s.buffer.add(x_best, overall_worst);
  }
  {
    // A few more TuRBO designs, evaluated at the current worst corner only,
    // densify the initial dataset cheaply.
    Rng stream = s.rng.split(0x1718);
    const std::size_t worst_j = s.last_worst.worst_corner();
    for (const auto& x01 : turbo.top_points(config_.init_buffer_seeds + 1)) {
      if (x01 == x_best) continue;
      const auto x = sizing.denormalize(x01);
      const auto hs = op_config_.sample_conditions(*testbench_, x, op_config_.n_opt, stream);
      const auto metrics = service.evaluate_batch(x, op_config_.corners[worst_j], hs);
      s.buffer.add(x01, worst_reward_of(spec, metrics));
    }
  }

  // ---------------- Risk-sensitive agent ----------------------------------
  s.agent = std::make_unique<rl::RiskSensitiveAgent>(p, agent_config(), s.rng.split(0xA6E7));
  s.verifier = std::make_unique<Verifier>(service, op_config_, verifier_options());

  // Warm up the agent on the initial dataset.
  for (int i = 0; i < 100; ++i) (void)s.agent->update(s.buffer);

  s.x_last = std::move(x_best);
  s.mc_rng = s.rng.split(0x3C3C);
  result_.termination = "iteration-cap";
}

// One iteration of the main loop (Fig. 2 steps 1-6).
bool GlovaOptimizer::do_step() {
  Session& s = *s_;
  if (s.iter >= config_.max_iterations) return false;
  const std::size_t iter = ++s.iter;
  EvaluationEngine& service = s.service;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();

  // (1) new design from the actor, screened by the ensemble bound (Eq. 6).
  std::vector<double> x_new = s.agent->propose_screened(s.x_last, 8);
  const auto x_phys = sizing.denormalize(x_new);

  // (2) worst corner + N' mismatch conditions via Eq. (3).
  const std::size_t worst_j = s.last_worst.worst_corner();
  const auto hs = op_config_.sample_conditions(*testbench_, x_phys, op_config_.n_opt, s.mc_rng);

  // (3) simulate under the sampled conditions.
  const auto metrics = service.evaluate_batch(x_phys, op_config_.corners[worst_j], hs);
  const double r_worst = worst_reward_of(spec, metrics);
  s.last_worst.update(worst_j, r_worst);

  // (4) mu-sigma gate: is full verification worthwhile?
  const MuSigmaResult ms = mu_sigma_evaluate(spec, metrics, config_.beta2);
  const bool gate = config_.use_mu_sigma ? ms.pass : (r_worst == kSuccessReward);

  IterationTrace trace;
  trace.iteration = iter;
  trace.reward_worst = r_worst;
  const rl::EnsembleCritic::Bound bound = s.agent->critic().bound(x_new);
  trace.critic_mean = bound.mean;
  trace.critic_bound = bound.risk_adjusted;
  trace.mu_sigma_pass = gate;

  double r_store = r_worst;
  if (gate) {
    // (5) full verification with reordered PVT conditions.
    trace.attempted_verification = true;
    CornerPresample reuse;
    reuse.corner_index = worst_j;
    reuse.hs = hs;
    reuse.metrics = metrics;
    const VerificationOutcome outcome = s.verifier->verify(x_phys, s.last_worst, s.mc_rng, &reuse);
    for (const auto& [j, w] : outcome.corner_worst_rewards) {
      s.last_worst.update(j, w);
      r_store = std::min(r_store, w);  // verification failures are the most
                                       // informative worst-case rewards
    }
    if (outcome.passed) {
      result_.success = true;
      result_.rl_iterations = iter;
      result_.x01_final = x_new;
      result_.x_phys_final = x_phys;
      result_.termination = "verified";
      trace.sims_total = service.simulation_count();
      result_.trace.push_back(trace);
      return false;
    }
  }

  // (6) store the worst reward; update the agent.  Several gradient
  // rounds per environment step: network updates cost microseconds next
  // to a SPICE run, and Algorithm 1 does not couple the two one-to-one.
  s.buffer.add(x_new, r_store);
  for (int e = 0; e < 3; ++e) (void)s.agent->update(s.buffer);
  trace.sims_total = service.simulation_count();
  result_.trace.push_back(trace);
  s.x_last = std::move(x_new);
  // Re-anchor the actor input on the best-known design when the current
  // chain has drifted into a clearly worse region; the actor chain (paper
  // step 1) otherwise has no way back after a streak of bad proposals.
  if (const auto best = s.buffer.best(); best && r_store < best->reward - 0.05) {
    s.x_last = best->x01;
  }
  result_.rl_iterations = iter;
  return iter < config_.max_iterations;
}

}  // namespace glova::core
