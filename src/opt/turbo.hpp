// TuRBO-1 (Eriksson et al., NeurIPS 2019): trust-region Bayesian
// optimization.  GLOVA and PVTSizing [9] use it to generate design solutions
// that meet constraints under the *typical* condition before RL takes over
// (paper Sec. III-C step 0); RobustAnalog's random initialization is the
// contrast case the paper measures against.
//
// Ask/tell interface: the caller owns evaluation (and simulation counting).
// Maximizes the reward surrogate; reaching `target` (the 0.2 all-constraints-
// met reward) is the stop condition for initialization.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "opt/gp.hpp"

namespace glova::opt {

struct TurboConfig {
  std::size_t n_init = 12;          ///< Latin-hypercube warmup points
  std::size_t candidates = 256;     ///< candidate pool per ask
  double tr_initial = 0.4;          ///< trust-region edge length (in [0,1] units)
  double tr_min = 0.02;
  double tr_max = 1.0;
  std::size_t success_tolerance = 3;  ///< consecutive successes before expand
  std::size_t failure_tolerance = 8;  ///< consecutive failures before shrink
  double ucb_beta = 1.5;              ///< acquisition: mean + beta * std
};

class Turbo {
 public:
  Turbo(std::size_t dim, TurboConfig config, Rng rng);

  /// Next batch of points to evaluate (normalized [0,1]^p).
  [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n);

  /// Report observed values (same order as the points from ask()).
  void tell(const std::vector<std::vector<double>>& points, const std::vector<double>& values);

  [[nodiscard]] const std::vector<double>& best_point() const { return best_x_; }
  [[nodiscard]] double best_value() const { return best_y_; }
  [[nodiscard]] double trust_region() const { return tr_; }
  [[nodiscard]] std::size_t observation_count() const { return xs_.size(); }

  /// The k best observed points (for seeding the RL replay buffer).
  [[nodiscard]] std::vector<std::vector<double>> top_points(std::size_t k) const;

  /// True once the trust region collapsed below tr_min (TuRBO restart
  /// condition; the caller may reconstruct or stop).
  [[nodiscard]] bool converged() const { return tr_ < config_.tr_min; }

 private:
  [[nodiscard]] std::vector<std::vector<double>> latin_hypercube(std::size_t n);

  std::size_t dim_;
  TurboConfig config_;
  Rng rng_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  std::vector<double> best_x_;
  double best_y_ = -1e300;
  double tr_;
  std::size_t success_streak_ = 0;
  std::size_t failure_streak_ = 0;
  std::size_t lhs_served_ = 0;
};

}  // namespace glova::opt
