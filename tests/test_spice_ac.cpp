// Tests for the linearized small-signal AC/noise pass (spice/ac.hpp) and
// the continuous EKV channel model (spice/mos_model.hpp):
//   - RC lowpass noise against the closed-form band-limited kT/C integral,
//   - common-source amplifier gain and output PSD against the hand-stamped
//     small-signal model,
//   - the noise-funnel invariant thermal^2 + flicker^2 == total^2,
//   - EKV-vs-Level-1 agreement deep in strong inversion,
//   - bit-identity of the batched evaluator against sequential runs with
//     mos_model=ekv (the model dispatch must not break lockstep parity).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "pdk/corner.hpp"
#include "pdk/mos_params.hpp"
#include "pdk/variation.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/mos_model.hpp"
#include "spice/simulator.hpp"
#include "spice/warm_start.hpp"

namespace glova::spice {
namespace {

class ScopedMosModel {
 public:
  explicit ScopedMosModel(MosModel model) : prev_(mos_model_default()) {
    set_mos_model_default(model);
  }
  ~ScopedMosModel() { set_mos_model_default(prev_); }
  ScopedMosModel(const ScopedMosModel&) = delete;
  ScopedMosModel& operator=(const ScopedMosModel&) = delete;

 private:
  MosModel prev_;
};

// ------------------------------------------------------------------ RC ----

// First-order RC lowpass driven from an ideal source: the only noise source
// is the resistor, and every quantity has a closed form.
//   |H(f)|          = 1 / sqrt(1 + (2 pi f R C)^2)
//   S_out(f)        = 4 k T R / (1 + (2 pi f R C)^2)
//   integral(f1,f2) = (2 k T / (pi C)) (atan x2 - atan x1),  x = 2 pi f R C
TEST(AcNoise, RcLowpassMatchesClosedForm) {
  const double r = 10e3;
  const double c = 1e-12;

  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VIN", in, Circuit::ground(), Waveform::dc(0.5));
  ckt.add_resistor("R1", in, out, r);
  ckt.add_capacitor("C1", out, Circuit::ground(), c);

  const SimulatorOptions options = default_simulator_options();
  Simulator sim(ckt, options);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);

  AcNoiseSpec spec;
  spec.input = "VIN";
  spec.output_pos = "out";
  spec.f_start = 1e4;
  spec.f_stop = 1e10;
  spec.points_per_decade = 16;
  spec.temp_k = 300.0;
  const NoiseResult nr = noise_analysis(ckt, op, spec, options);
  ASSERT_TRUE(nr.ok) << nr.message;
  ASSERT_EQ(nr.freq.size(), nr.gain_mag.size());
  ASSERT_EQ(nr.freq.size(), nr.output_psd.size());

  const double kT = units::kBoltzmann * spec.temp_k;
  // The per-frequency solves are exact (no integration involved).
  for (std::size_t i = 0; i < nr.freq.size(); ++i) {
    const double x = 2.0 * M_PI * nr.freq[i] * r * c;
    const double h = 1.0 / std::sqrt(1.0 + x * x);
    EXPECT_NEAR(nr.gain_mag[i], h, 1e-6 * h) << "f = " << nr.freq[i];
    const double psd = 4.0 * kT * r * h * h;
    EXPECT_NEAR(nr.output_psd[i], psd, 1e-6 * psd) << "f = " << nr.freq[i];
  }
  EXPECT_NEAR(nr.gain_ref, 1.0, 1e-4);

  // The integral carries the trapezoid-on-log-grid error; 16 points/decade
  // keeps it well under 1%.
  const double x1 = 2.0 * M_PI * spec.f_start * r * c;
  const double x2 = 2.0 * M_PI * spec.f_stop * r * c;
  const double vn2 = 2.0 * kT / (M_PI * c) * (std::atan(x2) - std::atan(x1));
  EXPECT_NEAR(nr.output_noise_vrms * nr.output_noise_vrms, vn2, 0.01 * vn2);

  // No MOSFETs: all of it is thermal, none flicker.
  EXPECT_DOUBLE_EQ(nr.flicker_vrms, 0.0);
  EXPECT_DOUBLE_EQ(nr.thermal_vrms, nr.output_noise_vrms);
}

// ------------------------------------------------------- CS amplifier ----

/// Resistor-loaded common-source NMOS stage biased in saturation.
struct CsAmp {
  Circuit ckt;
  pdk::MosParams params;
  double w = 0.5e-6;
  double l = 120e-9;
  double rd = 20e3;
  double vbias = 0.0;

  CsAmp() {
    params = pdk::mos_params(false, pdk::typical_corner(), l);
    vbias = params.vth + 0.15;  // ~16 uA: IR drop leaves the drain in saturation
    const auto vdd = ckt.node("vdd");
    const auto g = ckt.node("g");
    const auto d = ckt.node("d");
    ckt.add_vsource("VDD", vdd, Circuit::ground(), Waveform::dc(1.2));
    ckt.add_vsource("VIN", g, Circuit::ground(), Waveform::dc(vbias));
    ckt.add_resistor("RD", vdd, d, rd);
    ckt.add_mosfet("M1", d, g, Circuit::ground(), params, w, l);
  }
};

TEST(AcNoise, CommonSourceAmpMatchesLinearization) {
  CsAmp amp;
  const SimulatorOptions options = default_simulator_options();
  Simulator sim(amp.ckt, options);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  const double vd = op.node_voltages[amp.ckt.find_node("d")];
  ASSERT_GT(vd, amp.vbias - amp.params.vth);  // saturation

  AcNoiseSpec spec;
  spec.input = "VIN";
  spec.output_pos = "d";
  spec.f_start = 1e5;
  spec.f_stop = 1e9;
  spec.temp_k = amp.params.temp_k;  // one temperature for every source
  const NoiseResult nr = noise_analysis(amp.ckt, op, spec, options);
  ASSERT_TRUE(nr.ok) << nr.message;

  // Hand-stamped small-signal model from the same linearization the Newton
  // loop uses (gmin appears in parallel with the output in the AC system).
  const NmosEval e =
      nmos_channel(MosModel::kLevel1, amp.params, amp.w / amp.l, amp.vbias, vd);
  const double gout = 1.0 / amp.rd + e.gds + options.gmin;
  const double rout = 1.0 / gout;
  const double gain = e.gm * rout;
  EXPECT_NEAR(nr.gain_ref, gain, 1e-4 * gain);

  // Flat-band circuit (no capacitors): per-point PSD is channel thermal +
  // load thermal + channel flicker through the same output resistance.
  const double kT = units::kBoltzmann * spec.temp_k;
  const double thermal_i = 4.0 * kT * (amp.params.gamma_n * e.gm + e.gds) + 4.0 * kT / amp.rd;
  const double flicker_i = amp.params.kf * std::pow(e.id, amp.params.af);
  for (std::size_t i = 0; i < nr.freq.size(); ++i) {
    const double psd = (thermal_i + flicker_i / nr.freq[i]) * rout * rout;
    EXPECT_NEAR(nr.output_psd[i], psd, 1e-3 * psd) << "f = " << nr.freq[i];
  }

  // Input-referred = output / gain by definition.
  EXPECT_NEAR(nr.input_noise_vrms, nr.output_noise_vrms / nr.gain_ref,
              1e-12 * nr.input_noise_vrms);
}

// The thermal/flicker decomposition is a partition of the same integral:
// thermal^2 + flicker^2 == total^2 holds by linearity, not approximately.
TEST(AcNoise, FunnelInvariantPartitionsTotalNoise) {
  CsAmp amp;
  const SimulatorOptions options = default_simulator_options();
  Simulator sim(amp.ckt, options);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);

  AcNoiseSpec spec;
  spec.input = "VIN";
  spec.output_pos = "d";
  spec.f_start = 1e3;  // low start so flicker actually contributes
  spec.f_stop = 1e9;
  spec.temp_k = amp.params.temp_k;
  const NoiseResult nr = noise_analysis(amp.ckt, op, spec, options);
  ASSERT_TRUE(nr.ok) << nr.message;

  EXPECT_GT(nr.thermal_vrms, 0.0);
  EXPECT_GT(nr.flicker_vrms, 0.0);
  const double total2 = nr.output_noise_vrms * nr.output_noise_vrms;
  const double parts2 =
      nr.thermal_vrms * nr.thermal_vrms + nr.flicker_vrms * nr.flicker_vrms;
  EXPECT_NEAR(parts2, total2, 1e-9 * total2);
}

// The EKV pass works on both channel models: same circuit, ekv OP and ekv
// small-signal conductances, finite positive noise.
TEST(AcNoise, RunsOnEkvOperatingPoint) {
  CsAmp amp;
  SimulatorOptions options = default_simulator_options();
  options.mos_model = MosModel::kEkv;
  Simulator sim(amp.ckt, options);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);

  AcNoiseSpec spec;
  spec.input = "VIN";
  spec.output_pos = "d";
  spec.temp_k = amp.params.temp_k;
  const NoiseResult nr = noise_analysis(amp.ckt, op, spec, options);
  ASSERT_TRUE(nr.ok) << nr.message;
  EXPECT_TRUE(std::isfinite(nr.input_noise_vrms));
  EXPECT_GT(nr.input_noise_vrms, 0.0);
  EXPECT_GT(nr.gain_ref, 1.0);  // still an amplifier under ekv
}

// ------------------------------------------------------------ channels ----

// Deep in strong inversion the softplus terms are linear to within
// exp(-z), so the EKV interpolation collapses onto the square law.  Points
// are chosen with every half-charge argument above ~8 characteristic
// voltages, which puts the analytic disagreement below 0.1%.
TEST(MosModels, EkvMatchesLevel1InStrongInversion) {
  const pdk::MosParams p = pdk::mos_params(false, pdk::typical_corner(), 100e-9);
  const double w_over_l = 10.0;
  struct Point {
    double vgs, vds;
  };
  const Point points[] = {
      {p.vth + 0.6, 1.0},   // saturation
      {p.vth + 0.8, 0.2},   // triode
      {p.vth + 0.7, 0.05},  // deep triode (pass-gate-like)
  };
  for (const auto& pt : points) {
    const NmosEval l1 = nmos_channel(MosModel::kLevel1, p, w_over_l, pt.vgs, pt.vds);
    const NmosEval ekv = nmos_channel(MosModel::kEkv, p, w_over_l, pt.vgs, pt.vds);
    EXPECT_NEAR(ekv.id, l1.id, 1e-3 * std::abs(l1.id)) << "vgs " << pt.vgs << " vds " << pt.vds;
    EXPECT_NEAR(ekv.gm, l1.gm, 1e-3 * std::abs(l1.gm)) << "vgs " << pt.vgs << " vds " << pt.vds;
    EXPECT_NEAR(ekv.gds, l1.gds, 1e-3 * std::abs(l1.gds))
        << "vgs " << pt.vgs << " vds " << pt.vds;
  }
}

// Below threshold Level-1 is dead while EKV conducts with the subthreshold
// slope gm = Id / (n vt) — the property the cold low-voltage corner needs.
TEST(MosModels, EkvConductsInWeakInversion) {
  const pdk::MosParams p = pdk::mos_params(false, pdk::typical_corner(), 100e-9);
  const double w_over_l = 10.0;
  const double vgs = p.vth - 0.2;  // ~3 v_char below threshold: sig/sp within 3% of 1
  const NmosEval l1 = nmos_channel(MosModel::kLevel1, p, w_over_l, vgs, 0.5);
  const NmosEval ekv = nmos_channel(MosModel::kEkv, p, w_over_l, vgs, 0.5);
  EXPECT_EQ(l1.id, 0.0);
  EXPECT_GT(ekv.id, 0.0);
  EXPECT_GT(ekv.gm, 0.0);
  EXPECT_GT(ekv.gds, 0.0);  // the reverse half-charge keeps gds alive
  const double n_vt = pdk::kEkvSlopeFactor * units::thermal_voltage(p.temp_k);
  EXPECT_NEAR(ekv.gm, ekv.id / n_vt, 0.05 * ekv.gm);
}

// ------------------------------------------------- batched ekv parity ----

/// A nominal lane plus deterministic local draws (same recipe as
/// test_spice_batch.cpp).
std::vector<std::vector<double>> draw_group(const circuits::Testbench& tb,
                                            std::span<const double> x, std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  const auto layout = tb.mismatch_layout(x, false);
  auto hs = pdk::sample_mismatch_set(layout, count, rng, pdk::GlobalMode::Zero);
  hs.insert(hs.begin(), std::vector<double>{});
  return hs;
}

class BatchedEkvParity : public ::testing::TestWithParam<int> {};

// The model dispatch is a plan constant shared by the scalar and batched
// kernels, so the lockstep bit-identity promise must survive mos_model=ekv
// — including at the cold corner only ekv can evaluate.
TEST_P(BatchedEkvParity, BitIdenticalToSequentialUnderEkv) {
  const circuits::Testcase tc = circuits::all_testcases()[GetParam()];
  const ScopedMosModel guard(MosModel::kEkv);
  set_adaptive_timestep_default(false);
  set_newton_bypass_default(false);
  const auto tb = circuits::make_testbench(tc, circuits::Backend::Spice);

  const auto designs = parity_grid::designs_x01(tc);
  auto corners = parity_grid::corners();
  corners.push_back(parity_grid::cold_low_voltage_corner());
  for (std::size_t d = 0; d < 2; ++d) {  // two designs bound the runtime
    const auto x = tb->sizing().denormalize(designs[d]);
    const auto hs = draw_group(*tb, x, 2, 100 + d);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      thread_local_dc_cache().clear();
      std::vector<std::vector<double>> seq;
      for (const auto& h : hs) seq.push_back(tb->evaluate(x, corners[c], h));

      thread_local_dc_cache().clear();
      const auto bat = tb->evaluate_draws(x, corners[c], hs);

      ASSERT_EQ(bat.size(), seq.size());
      for (std::size_t i = 0; i < seq.size(); ++i) {
        ASSERT_EQ(bat[i].size(), seq[i].size());
        for (std::size_t mi = 0; mi < seq[i].size(); ++mi) {
          EXPECT_EQ(bat[i][mi], seq[i][mi])
              << circuits::to_string(tc) << " design " << d << " corner " << c << " draw " << i
              << " metric " << mi;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTestcases, BatchedEkvParity, ::testing::Range(0, 3));

}  // namespace
}  // namespace glova::spice
