// Small shared string utilities.
#pragma once

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>

namespace glova {

/// ASCII lowercase copy (used for case-insensitive name matching in the
/// registry, config/run-spec parsing, and the SPICE netlist parser).
[[nodiscard]] inline std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace glova
