#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace glova {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t max_workers) {
  if (n == 0) return;
  if (n == 1 || max_workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::size_t n_tasks = std::min(n, workers_.size());
  if (max_workers != 0) n_tasks = std::min(n_tasks, max_workers);
  std::vector<std::future<void>> futures;
  futures.reserve(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace glova
