// The GLOVA optimization loop (paper Fig. 2, Secs. III-C and IV):
//
//   0. TuRBO generates design solutions meeting constraints at the typical
//      condition (initial sampling adopted from PVTSizing [9]).
//   1. The actor proposes a new design from the last one.
//   2. The worst PVT corner is selected from the last-worst-case buffer and
//      N' mismatch conditions are sampled via Eq. (3).
//   3. The design is simulated under those conditions.
//   4. The mu-sigma metric decides whether full verification is worthwhile.
//   5. If so, Algorithm 2 verifies with reordered PVT conditions; success
//      terminates the framework.
//   6. Otherwise the worst reward is stored in the replay buffer and the
//      risk-sensitive agent is updated (Algorithm 1).
//
// The loop is a step-driven session: each core::Optimizer::step() performs
// one Fig. 2 iteration (the first also runs step 0 + the initial dataset),
// so callers can interleave, observe, budget, or cancel without forking the
// algorithm.  run() remains the thin to-termination loop.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuits/testbench.hpp"
#include "core/config.hpp"
#include "core/evaluation_engine.hpp"
#include "core/optimizer_base.hpp"
#include "core/verifier.hpp"
#include "rl/agent.hpp"

namespace glova::core {

struct GlovaConfig {
  VerifMethod method = VerifMethod::C;
  std::string corner_filter = "all";  ///< RunSpec `corner_filter` (docs/run_spec.md)
  std::size_t n_opt_samples = 3;      ///< N' (paper: parallel sample size 3)
  double beta1 = -3.0;                ///< risk-avoidance (Eq. 6)
  double beta2 = 4.0;                 ///< reliability factor (Eq. 7)
  std::size_t batch_size = 10;        ///< replay batch (paper Sec. VI-B)
  std::size_t ensemble_size = 5;
  std::size_t hidden = 64;
  std::size_t max_iterations = 3000;  ///< success-rate cap
  std::size_t turbo_budget = 150;     ///< typical-condition evals for init
  std::size_t init_buffer_seeds = 6;  ///< extra TuRBO designs seeding the buffer
  bool use_ensemble_critic = true;    ///< ablation "w/o EC": single base model
  bool use_mu_sigma = true;           ///< ablation "w/o mu-sigma"
  bool use_reordering = true;         ///< ablation "w/o SR"
  std::uint64_t seed = 1;
  SimulationCost cost;
  EngineConfig engine;                ///< evaluation-stack knobs (parallelism, cache)
};

class GlovaOptimizer final : public Optimizer {
 public:
  GlovaOptimizer(circuits::TestbenchPtr testbench, GlovaConfig config);
  ~GlovaOptimizer() override;

  [[nodiscard]] const OperationalConfig& operational_config() const { return op_config_; }
  [[nodiscard]] const char* algorithm_name() const override { return "GLOVA"; }
  [[nodiscard]] bool supports_state_serialization() const override { return true; }

 protected:
  void do_start() override;
  bool do_step() override;
  void do_save_state(std::ostream& os) const override;
  void do_load_state(std::istream& is) override;
  [[nodiscard]] const EvaluationEngine* engine_ptr() const override;
  [[nodiscard]] const SimulationCost& cost() const override { return config_.cost; }

 private:
  /// Per-run state hoisted from the legacy run() stack (engine, RNG streams,
  /// TuRBO-seeded buffers, agent, verifier); created lazily on first step.
  struct Session;

  /// The agent/verifier configurations derived from config_, shared by
  /// do_start and do_load_state so a restored agent is built exactly like
  /// the saved one.
  [[nodiscard]] rl::AgentConfig agent_config() const;
  [[nodiscard]] VerifierOptions verifier_options() const;

  circuits::TestbenchPtr testbench_;
  GlovaConfig config_;
  OperationalConfig op_config_;
  std::unique_ptr<Session> s_;
};

}  // namespace glova::core
