#include "nn/loss.hpp"

#include <stdexcept>

namespace glova::nn {

double mse(std::span<const double> pred, std::span<const double> target) {
  if (pred.size() != target.size()) throw std::invalid_argument("mse: size mismatch");
  if (pred.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    sum += 0.5 * d * d;
  }
  return sum / static_cast<double>(pred.size());
}

std::vector<double> mse_grad(std::span<const double> pred, std::span<const double> target) {
  if (pred.size() != target.size()) throw std::invalid_argument("mse_grad: size mismatch");
  std::vector<double> g(pred.size());
  const double scale = pred.empty() ? 0.0 : 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) g[i] = (pred[i] - target[i]) * scale;
  return g;
}

double mse(double pred, double target) {
  const double d = pred - target;
  return 0.5 * d * d;
}

double mse_grad_scalar(double pred, double target) { return pred - target; }

}  // namespace glova::nn
