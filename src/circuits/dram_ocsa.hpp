// Offset-cancellation sense amplifier (OCSA) + subhole (SH) in a DRAM core
// testcase [26], [27] — paper Sec. VI-A.
//
// Sizing vector (12 parameters, design space ~10^24):
//   OCSA widths  W_xn, W_xp, W_ocs, W_csel in [0.28, 1.028] um (cell pitch!)
//   SH widths    W_nsa, W_psa             in [5, 15] um
//   lengths      L_* (6)                  in [0.03, 0.06] um
// Metrics / constraints (Kim et al., TVLSI 2019):
//   low  data sensing voltage  dVD0 >= 85 mV   (maximize)
//   high data sensing voltage  dVD1 >= 85 mV   (maximize)
//   energy per 1-bit sensing   <= 30 fJ.
//
// The behavioral model reproduces the structure of 6F2 open-bitline sensing:
// cell-to-bitline charge sharing (Cs vs large parasitic C_BL), SA offset
// with offset cancellation (bigger OC switches cancel more but inject more
// charge), subhole drivers shared by 512 SAs (drive strength vs common-mode
// kickback), and a cell-array mismatch space (cell voltage and capacitor
// spread) on top of the transistor Pelgrom mismatch — the "extensive
// mismatches" that make this testcase need the most statistical simulations.
//
// The two sensing margins conflict: residual SA offset helps one data
// polarity and hurts the other, and NSA/PSA drive asymmetry does the same,
// exactly the tension the paper highlights.
#pragma once

#include "circuits/testbench.hpp"

namespace glova::circuits {

struct DramSizing {
  enum : std::size_t {
    kWXn = 0, kWXp, kWOcs, kWCsel, kWNsa, kWPsa,
    kLXn, kLXp, kLOcs, kLCsel, kLNsa, kLPsa,
    kCount
  };
};

/// Transistor instances in the mismatch layout (cross pair, OC switches,
/// csel, subhole drivers) and the cell-array coordinate extension.  The
/// mismatch vector has 2 * kDramDeviceCount + kDramArrayCoords entries;
/// the array coordinates live at the k*Idx* positions.  Shared by the
/// behavioral model and the SPICE netlist.
inline constexpr std::size_t kDramDeviceCount = 9;
inline constexpr std::size_t kDramArrayCoords = 3;  ///< dVcell, dCs/Cs, dCbl/Cbl
inline constexpr std::size_t kDramIdxVcell = kDramDeviceCount * 2;
inline constexpr std::size_t kDramIdxCs = kDramDeviceCount * 2 + 1;
inline constexpr std::size_t kDramIdxCbl = kDramDeviceCount * 2 + 2;

struct DramConditions {
  double cs = 12e-15;           ///< cell capacitance [F]
  double cbl0 = 25e-15;         ///< bare bitline parasitic [F] (2K-wordline array)
  double c_san_fixed = 2e-15;   ///< per-SA fixed load on the shared SAN/SAP rail [F]
  double n_shared_sa = 512;     ///< SAs served by one subhole driver
  double v1_frac = 0.86;        ///< stored '1' level as fraction of vdd (retention loss)
  double v0_frac = 0.10;        ///< stored '0' level as fraction of vdd
  double t_overlap = 0.5e-9;    ///< sense-amp overlap window [s]
  double t_ramp = 0.2e-9;       ///< subhole enable ramp [s]
  double k_kick = 0.015;        ///< common-mode kickback coupling factor
  double gain_cap = 2.0;        ///< regeneration boost cap during overlap
  double oc_half_width = 0.28e-6;///< OC switch width for 50 % cancellation [m]
  // Cell-array mismatch sigmas (local / global).
  double sigma_vcell_local = 0.016;  ///< [V]
  double sigma_vcell_global = 0.010; ///< [V]
  double sigma_cs_local = 0.04;      ///< relative
  double sigma_cs_global = 0.02;     ///< relative
  double sigma_cbl_local = 0.03;     ///< relative
  double sigma_cbl_global = 0.015;   ///< relative
};

/// Cell and (per-line) bitline capacitance under the array mismatch
/// spreads and the design's junction loading — one derivation shared by
/// the behavioral charge-sharing model, the SPICE netlist construction,
/// and the SPICE energy accounting.
struct DramArrayCaps {
  double cs = 0.0;   ///< cell capacitance [F]
  double cbl = 0.0;  ///< one bitline's total capacitance [F]
};
[[nodiscard]] DramArrayCaps dram_array_caps(const DramConditions& cond,
                                            std::span<const double> x,
                                            std::span<const double> h);

class DramOcsaSubhole final : public Testbench {
 public:
  DramOcsaSubhole();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const PerformanceSpec& performance() const override { return performance_; }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override;

  /// Returns {dVD0 [V], dVD1 [V], energy per bit [J]}.
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Transistor instances (9 devices); array coordinates are appended after.
  [[nodiscard]] std::vector<pdk::DeviceGeometry> devices(std::span<const double> x) const;

  [[nodiscard]] const DramConditions& conditions() const { return conditions_; }

 private:
  std::string name_ = "OCSA and SH in DRAM core";
  SizingSpec sizing_;
  PerformanceSpec performance_;
  DramConditions conditions_;
};

}  // namespace glova::circuits
