// Behavioral-vs-SPICE parity harness (ISSUE 5 tentpole deliverable).
//
// For every Table II testcase this suite evaluates a grid of realistic
// designs and PVT corners on both evaluator backends and asserts the
// metrics agree within documented tolerance bands.  The bands pin the
// *relationship* between the closed-form behavioral models and the
// transistor-level MNA netlists: they are wide where the models genuinely
// differ (see below) but tight enough that a broken netlist — a latch that
// stops deciding, a reservoir that stops drooping, a sense amp that flips
// the wrong way — lands far outside them.
//
// The suite runs each testcase under BOTH channel models (Level-1 and EKV,
// see mos_model.hpp): separate band rows per model, with the process-wide
// default switched through an RAII guard.  The ekv rows additionally
// include the cold low-voltage corner (SS / 0.8 V / -40 C) that the hard
// Level-1 cutoff cannot evaluate at all — converging there without source
// stepping crutches is an explicit acceptance criterion of ISSUE 10.
//
// Why the bands are not ±5 %:
//   * the behavioral models are first-order analytics (square-law/EKV
//     hand calculations), while the SPICE backend solves the full MNA
//     system; absolute delays/energies legitimately differ by factors;
//   * slow/low-voltage corners (SS @ 0.8 V) operate near or below
//     threshold, where the analytic delay model and the transient solver
//     diverge most — at the cold ekv-only corner the SAL decision rides
//     weak-inversion currents and the set-delay ratio stretches to ~31;
//   * the FIA noise metric divides the latch-offset term by the measured
//     gain, amplifying any gain disagreement (ratio up to ~62 at the cold
//     corner under nominal mismatch);
//   * SAL noise reuses the analytic budget on both backends (the simulated
//     AC/noise pass is opt-in via spice_noise), so its ratio is pinned at
//     exactly 1 and its band is tight.
//
// Recorded ratio ranges (spice / behavioral, over the shared grid in
// backend_parity_grid.hpp, nominal + drawn mismatch, 2026 toolchain) and
// the shipped bands with headroom:
//
//   level1 (corners TT/0.9/27, SS/0.8/85, FF/1.0/-25):
//     SAL   power      0.12..0.37   band [0.05, 0.8]
//           set delay  1.11..9.58   band [0.5, 16.0]
//           reset      0.69..2.03   band [0.35, 4.0]
//           noise      1.00         band [0.99, 1.01]
//     FIA   energy     0.13..0.57   band [0.06, 1.0]
//           noise      0.70..20.7   band [0.3, 35.0]
//     OCSA  dVD0       0.35..1.23   band [0.12, 2.5]
//           dVD1       0.46..2.26   band [0.2, 3.6]
//           energy     0.24..1.02   band [0.1, 1.8]
//
//   ekv (same corners + SS/0.8/-40 cold):
//     SAL   power      0.06..0.40   band [0.03, 0.8]
//           set delay  0.98..27.6   band [0.5, 50.0]
//           reset      0.30..2.04   band [0.15, 4.0]
//           noise      1.00         band [0.999, 1.001]
//     FIA   energy     0.22..0.59   band [0.12, 1.0]
//           noise      0.99..61.8   band [0.5, 100.0]
//     OCSA  dVD0       0.35..1.36   band [0.15, 2.7]
//           dVD1       0.40..2.07   band [0.2, 3.6]
//           energy     0.24..0.99   band [0.12, 1.8]
//
// Re-recording: if an intentional model/netlist change moves a ratio out
// of band, rerun this suite — each failure prints the measured ratio —
// and update the table above plus the bands below together.  The CMake
// target `probe_parity` prints the full grid in one shot: run it plain and
// with `h`, then with `ekv` and `ekv h`, and take the envelope.
#include <gtest/gtest.h>

#include <cmath>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"
#include "spice/simulator.hpp"

namespace glova {
namespace {

/// Swaps the process-wide channel-model default for the duration of one
/// test, restoring the previous value even on assertion failure.
class ScopedMosModel {
 public:
  explicit ScopedMosModel(spice::MosModel model) : prev_(spice::mos_model_default()) {
    spice::set_mos_model_default(model);
  }
  ~ScopedMosModel() { spice::set_mos_model_default(prev_); }
  ScopedMosModel(const ScopedMosModel&) = delete;
  ScopedMosModel& operator=(const ScopedMosModel&) = delete;

 private:
  spice::MosModel prev_;
};

struct MetricBand {
  const char* metric;
  double lo;  ///< min accepted spice/behavioral ratio
  double hi;  ///< max accepted spice/behavioral ratio
};

struct ParityBands {
  circuits::Testcase tc;
  spice::MosModel model;
  std::vector<MetricBand> nominal;  ///< bands, nominal mismatch
  std::vector<MetricBand> drawn;    ///< bands, local-mismatch draws
};

// The design/corner grid and draw recipe live in backend_parity_grid.hpp
// (shared with tools/probe_parity.cpp, which regenerates the ratio table).
// Rows 0-2 assert the Level-1 default; rows 3-5 re-run the same grid under
// ekv, with the cold low-voltage corner appended.
const ParityBands kBands[] = {
    {circuits::Testcase::Sal,
     spice::MosModel::kLevel1,
     {{"power", 0.05, 0.8},
      {"set_delay", 0.5, 16.0},
      {"reset_delay", 0.35, 4.0},
      {"noise", 0.99, 1.01}},
     {{"power", 0.05, 0.8},
      {"set_delay", 0.5, 16.0},
      {"reset_delay", 0.35, 4.0},
      {"noise", 0.99, 1.01}}},
    {circuits::Testcase::Fia,
     spice::MosModel::kLevel1,
     {{"energy", 0.06, 1.0}, {"noise", 0.3, 35.0}},
     {{"energy", 0.06, 1.0}, {"noise", 0.3, 35.0}}},
    {circuits::Testcase::DramOcsa,
     spice::MosModel::kLevel1,
     {{"dVD0", 0.12, 2.5}, {"dVD1", 0.2, 3.6}, {"energy_per_bit", 0.1, 1.8}},
     {{"dVD0", 0.12, 2.5}, {"dVD1", 0.2, 3.6}, {"energy_per_bit", 0.1, 1.8}}},
    {circuits::Testcase::Sal,
     spice::MosModel::kEkv,
     {{"power", 0.03, 0.8},
      {"set_delay", 0.5, 50.0},
      {"reset_delay", 0.15, 4.0},
      {"noise", 0.999, 1.001}},
     {{"power", 0.03, 0.8},
      {"set_delay", 0.5, 50.0},
      {"reset_delay", 0.15, 4.0},
      {"noise", 0.999, 1.001}}},
    {circuits::Testcase::Fia,
     spice::MosModel::kEkv,
     {{"energy", 0.12, 1.0}, {"noise", 0.5, 100.0}},
     {{"energy", 0.12, 1.0}, {"noise", 0.5, 100.0}}},
    {circuits::Testcase::DramOcsa,
     spice::MosModel::kEkv,
     {{"dVD0", 0.15, 2.7}, {"dVD1", 0.2, 3.6}, {"energy_per_bit", 0.12, 1.8}},
     {{"dVD0", 0.15, 2.7}, {"dVD1", 0.2, 3.6}, {"energy_per_bit", 0.12, 1.8}}}};

std::vector<pdk::PvtCorner> corners_for(const ParityBands& bands) {
  auto corners = parity_grid::corners();
  if (bands.model == spice::MosModel::kEkv) {
    corners.push_back(parity_grid::cold_low_voltage_corner());
  }
  return corners;
}

const char* model_tag(const ParityBands& bands) {
  return bands.model == spice::MosModel::kEkv ? " [ekv]" : " [level1]";
}

void check_pair(const circuits::Testbench& beh, const circuits::Testbench& spc,
                std::span<const double> x, const pdk::PvtCorner& corner,
                std::span<const double> h, std::span<const MetricBand> bands,
                const std::string& label) {
  const auto mb = beh.evaluate(x, corner, h);
  const auto ms = spc.evaluate(x, corner, h);
  ASSERT_EQ(mb.size(), bands.size()) << label;
  ASSERT_EQ(ms.size(), mb.size()) << label;
  for (std::size_t mi = 0; mi < mb.size(); ++mi) {
    const std::string where = label + " metric " + bands[mi].metric;
    ASSERT_TRUE(std::isfinite(mb[mi]) && std::isfinite(ms[mi])) << where;
    ASSERT_GT(mb[mi], 0.0) << where;
    ASSERT_GT(ms[mi], 0.0) << where;
    const double ratio = ms[mi] / mb[mi];
    EXPECT_GE(ratio, bands[mi].lo) << where << " ratio " << ratio;
    EXPECT_LE(ratio, bands[mi].hi) << where << " ratio " << ratio;
  }
}

class BackendParity : public ::testing::TestWithParam<int> {};

TEST_P(BackendParity, NominalMetricsAgreeWithinBands) {
  const ParityBands& bands = kBands[GetParam()];
  const ScopedMosModel guard(bands.model);
  const auto beh = circuits::make_testbench(bands.tc, circuits::Backend::Behavioral);
  const auto spc = circuits::make_testbench(bands.tc, circuits::Backend::Spice);
  const auto designs = parity_grid::designs_x01(bands.tc);
  for (std::size_t gi = 0; gi < designs.size(); ++gi) {
    const auto x = beh->sizing().denormalize(designs[gi]);
    for (const auto& corner : corners_for(bands)) {
      check_pair(*beh, *spc, x, corner, {}, bands.nominal,
                 std::string(circuits::to_string(bands.tc)) + model_tag(bands) + " design " +
                     std::to_string(gi) + " corner " + corner.name());
    }
  }
}

TEST_P(BackendParity, LocalMismatchDrawsAgreeWithinBands) {
  const ParityBands& bands = kBands[GetParam()];
  const ScopedMosModel guard(bands.model);
  const auto beh = circuits::make_testbench(bands.tc, circuits::Backend::Behavioral);
  const auto spc = circuits::make_testbench(bands.tc, circuits::Backend::Spice);
  const auto designs = parity_grid::designs_x01(bands.tc);
  for (std::size_t gi = 0; gi < designs.size(); ++gi) {
    const auto x = beh->sizing().denormalize(designs[gi]);
    const auto h = parity_grid::local_draw(*beh, x, gi);
    for (const auto& corner : corners_for(bands)) {
      check_pair(*beh, *spc, x, corner, h, bands.drawn,
                 std::string(circuits::to_string(bands.tc)) + model_tag(bands) + " design " +
                     std::to_string(gi) + " corner " + corner.name() + " (drawn)");
    }
  }
}

// Both backends must describe the *same* optimization problem: identical
// sizing bounds, metric specs, and mismatch-space dimensions.
TEST_P(BackendParity, SpecsAndMismatchLayoutMatch) {
  const ParityBands& bands = kBands[GetParam()];
  const auto beh = circuits::make_testbench(bands.tc, circuits::Backend::Behavioral);
  const auto spc = circuits::make_testbench(bands.tc, circuits::Backend::Spice);
  ASSERT_EQ(beh->sizing().dimension(), spc->sizing().dimension());
  for (std::size_t i = 0; i < beh->sizing().dimension(); ++i) {
    EXPECT_DOUBLE_EQ(beh->sizing().lower[i], spc->sizing().lower[i]);
    EXPECT_DOUBLE_EQ(beh->sizing().upper[i], spc->sizing().upper[i]);
  }
  ASSERT_EQ(beh->performance().count(), spc->performance().count());
  for (std::size_t i = 0; i < beh->performance().count(); ++i) {
    EXPECT_EQ(beh->performance().metrics[i].name, spc->performance().metrics[i].name);
    EXPECT_DOUBLE_EQ(beh->performance().metrics[i].bound, spc->performance().metrics[i].bound);
  }
  const auto x = beh->sizing().denormalize(parity_grid::designs_x01(bands.tc).front());
  for (const bool global : {false, true}) {
    EXPECT_EQ(beh->mismatch_layout(x, global).dimension(),
              spc->mismatch_layout(x, global).dimension());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTestcases, BackendParity, ::testing::Range(0, 6));

}  // namespace
}  // namespace glova
