#include "stats/pearson.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace glova::stats {

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx) * std::sqrt(syy);
  if (denom <= 0.0 || !std::isfinite(denom)) return 0.0;
  return sxy / denom;
}

std::vector<double> pearson_columns(const std::vector<std::vector<double>>& rows,
                                    std::span<const double> g) {
  if (rows.size() != g.size()) throw std::invalid_argument("pearson_columns: row/score count mismatch");
  if (rows.empty()) return {};
  const std::size_t r = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != r) throw std::invalid_argument("pearson_columns: ragged rows");
  }
  std::vector<double> rho(r, 0.0);
  std::vector<double> column(rows.size());
  for (std::size_t d = 0; d < r; ++d) {
    for (std::size_t n = 0; n < rows.size(); ++n) column[n] = rows[n][d];
    rho[d] = pearson(column, g);
  }
  return rho;
}

}  // namespace glova::stats
