// Floating inverter amplifier (FIA) testcase [25] — paper Sec. VI-A.
//
// Sizing vector (6 parameters, design space ~10^12):
//   W_n, W_p in [0.28, 32.8] um; L_n, L_p in [0.03, 0.33] um;
//   C_res, C_load in [0.005, 5.5] pF.
// Metrics / constraints:
//   energy per conversion <= 0.1 pJ, noise <= 130 mV.
//
// The FIA (Tang et al., JSSC 2020) is a fully dynamic pre-amplifier: a
// differential pair of CMOS inverters powered from a floating reservoir
// capacitor.  The behavioral model captures the energy budget (reservoir +
// load + gate charge), the integration gain gm*t_int/C_load, and an
// input-referred error combining integrated thermal noise, inverter offset
// (Pelgrom mismatch), and the following latch's offset divided by the gain.
// All constants flow through the pdk so corners/mismatch act consistently.
#pragma once

#include "circuits/testbench.hpp"

namespace glova::circuits {

struct FiaSizing {
  enum : std::size_t { kWn = 0, kWp, kLn, kLp, kCRes, kCLoad, kCount };
};

struct FiaConditions {
  double vcm_frac = 0.55;          ///< input common mode as a fraction of vdd
  double reservoir_swing = 0.25;   ///< usable reservoir droop as fraction of vdd
  double latch_sigma = 10e-3;      ///< next-stage latch offset sigma [V]
  double overhead_cap = 2e-15;     ///< routing/clocking overhead [F]
};

class FloatingInverterAmplifier final : public Testbench {
 public:
  FloatingInverterAmplifier();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const PerformanceSpec& performance() const override { return performance_; }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override;

  /// Returns {energy per conversion [J], input-referred noise [V]}.
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Device instances (4 transistors: two inverters).
  [[nodiscard]] std::vector<pdk::DeviceGeometry> devices(std::span<const double> x) const;

  [[nodiscard]] const FiaConditions& conditions() const { return conditions_; }

 private:
  std::string name_ = "Floating inverter amplifier";
  SizingSpec sizing_;
  PerformanceSpec performance_;
  FiaConditions conditions_;
};

}  // namespace glova::circuits
