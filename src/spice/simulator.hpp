// MNA-based circuit simulation: Newton-Raphson operating point and
// fixed-step transient analysis (backward-Euler startup, trapezoidal after).
//
// Unknown ordering: voltages of the *free* nodes (ground and source-pinned
// nodes eliminated), followed by one branch current per non-absorbed
// independent voltage source, then one per VCVS.  Nonlinear devices
// (MOSFETs) are linearized each Newton iteration via their companion model;
// a global gmin keeps matrices non-singular when devices cut off.
//
// Assembly is driven by a compiled StampPlan: the circuit is walked once at
// Simulator construction and every stamp is resolved to a flat index into
// the matrix/RHS storage.  Each Newton iteration then reduces to one memcpy
// of a cached static matrix, one memcpy of a per-timestep RHS base, and a
// tight MOSFET companion pass with no per-stamp ground checks (ground and
// pinned rows/columns target write-only scratch slots appended to the
// storage).
//
// Structure awareness: a node tied to ground through an ideal voltage
// source has a known voltage, so the plan absorbs it — the node unknown and
// the source's branch-current unknown drop out of the solved system, known
// voltages feed the RHS, and the branch current is recovered from KCL after
// the solve.  On the StrongARM testbench this shrinks the MNA system from
// 13 to 5 unknowns.  The absorbed and full-branch formulations agree
// exactly in exact arithmetic; floating-point results agree to within the
// Newton voltage tolerance (set SimulatorOptions::pin_grounded_sources =
// false to fall back to the classic formulation).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/lu.hpp"
#include "spice/mos_model.hpp"

namespace glova::spice {

struct OpResult {
  bool converged = false;
  /// Total Newton iterations spent, summed over warm-start attempts and
  /// source-stepping ramps (failed attempts included).
  int iterations = 0;
  /// True when the solve converged from a caller-provided warm start.
  bool warm_started = false;
  std::vector<double> node_voltages;  ///< indexed by NodeId (ground included, = 0)
  std::vector<double> vsource_currents;
};

/// Transient configuration.
struct TransientSpec {
  double t_stop = 1e-9;
  double dt = 1e-12;
  /// If true, start from `initial_conditions` instead of a DC operating
  /// point (HSPICE "UIC").  Nodes absent from the map start at 0 V.
  bool use_ic = false;
  std::map<std::string, double> initial_conditions;
  /// Node names to record (empty = record every node).  Voltage-source
  /// currents are always recorded as "I(<name>)".
  std::vector<std::string> record;
};

/// Sampled waveform of one quantity over the transient run.
struct Trace {
  std::string name;
  std::vector<double> values;
};

/// Where in the simulation a run gave up (FailureStage::None = no failure).
enum class FailureStage : std::uint8_t {
  None = 0,
  Setup,             ///< malformed spec (non-positive dt / t_stop, unknown node)
  DcOperatingPoint,  ///< initial DC solve failed every recovery rung
  TransientNewton,   ///< a timestep's Newton solve failed every recovery rung
  Timestep,          ///< adaptive controller hit dt_min and could not recover
  Deadline,          ///< cooperative Newton-iteration deadline exceeded
};
[[nodiscard]] const char* to_string(FailureStage stage);

/// Structured failure taxonomy replacing the bare error string: what stage
/// gave up, at what simulated time, how many recovery rungs were tried, and
/// the worst KCL-residual row of the last failed iterate.  Both the scalar
/// and the batched evaluator fill the same report, so failure messages are
/// identical across the two paths.
struct FailureReport {
  FailureStage stage = FailureStage::None;
  double time = 0.0;           ///< [s] simulated time of the failing solve
  int attempts = 0;            ///< recovery rungs tried (0 = recovery off)
  double final_residual = 0.0; ///< [A] worst KCL residual of the last iterate
  std::string worst_node;      ///< node name (or "branch k") of that residual
  std::string message;         ///< free-text detail (Setup stage: verbatim)

  [[nodiscard]] bool failed() const { return stage != FailureStage::None; }
  /// Render the canonical one-line error message for TransientResult::error.
  [[nodiscard]] std::string to_string() const;
};

struct TransientResult {
  bool ok = false;
  std::string error;
  /// Structured view of `error` (stage None when ok).
  FailureReport failure;
  std::vector<double> times;
  std::vector<Trace> traces;
  /// The DC operating point the run started from (empty when use_ic).
  /// Callers can cache it and pass it back to Simulator::transient as the
  /// warm start for related runs (e.g. mismatch draws of the same design).
  OpResult dc_op;
  /// Newton iterations spent on the initial DC solve (0 when use_ic).
  int dc_iterations = 0;
  /// Newton iterations summed over all timesteps (excluding the DC solve).
  std::uint64_t newton_iterations = 0;
  /// Timestep-controller observability: accepted steps (== times.size() - 1
  /// on success), rejected-and-redone steps, and the dt of every accepted
  /// step in order.  Fixed-grid runs fill these too (uniform dt trace,
  /// steps_rejected == 0), so callers can diff the two modes directly.
  std::uint64_t steps_accepted = 0;
  std::uint64_t steps_rejected = 0;
  std::vector<double> dt_trace;

  /// Access a trace by name ("out", "I(VDD)"); throws std::out_of_range.
  /// O(1) after the first lookup: a name -> index map is built lazily and
  /// rebuilt if traces were appended since.  Not safe to call concurrently
  /// with the first lookup on the same result object.
  [[nodiscard]] const std::vector<double>& trace(const std::string& name) const;
  [[nodiscard]] bool has_trace(const std::string& name) const;

 private:
  [[nodiscard]] const Trace* find_trace(const std::string& name) const;
  mutable std::unordered_map<std::string, std::size_t> trace_index_;
};

/// Convergence-recovery ladder (all rungs off by default: with
/// `enabled == false` every solve is bit-identical to previous releases).
/// Rung order on a failure:
///   1. DC: warm start -> cold restart -> source stepping (always on), then
///      gmin stepping with anneal-back — an extra conductance to ground on
///      every unknown node, started large and annealed geometrically toward
///      zero; a failed rung retreats one level and descends more gently.
///      The point only counts once a solve at extra gmin == 0 converges.
///   2. Transient Newton failure: cut the failing step into 2^k
///      backward-Euler substeps from the last accepted point (deeper on
///      repeated failure), recording only at the original grid point so the
///      trace shape is unchanged.
///   3. Bounded restart-from-DC: re-solve a (pseudo-)DC point with sources
///      frozen at the failing time and continue from it.
struct RecoveryPolicy {
  bool enabled = false;
  double gmin_start = 1e-3;   ///< [S] top of the gmin-stepping ladder
  double gmin_anneal = 0.01;  ///< geometric anneal factor per rung (toward 0)
  int max_gmin_rungs = 10;    ///< bound on ladder solves (including retreats)
  int max_step_cuts = 3;      ///< deepest substep split is 2^max_step_cuts
  int dc_restart_attempts = 1;///< restart-from-DC rungs per transient failure

  friend bool operator==(const RecoveryPolicy&, const RecoveryPolicy&) = default;
};

struct SimulatorOptions {
  double gmin = 1e-12;          ///< [S] from every node to ground
  double abstol = 1e-12;        ///< [A]
  double vtol = 1e-9;           ///< [V] Newton convergence on voltage update
  double max_step_voltage = 0.5;///< [V] Newton damping clamp
  int max_newton_iterations = 200;
  int source_steps = 10;        ///< source-stepping ramp points for hard OPs
  /// Absorb grounded ideal voltage sources: their node voltage becomes a
  /// known, removing the node and branch-current unknowns from the solved
  /// system (branch currents are recovered from KCL).  Disable to force the
  /// classic full-branch MNA formulation.
  bool pin_grounded_sources = true;

  /// --- LTE-adaptive timestep control (transient only) -------------------
  /// When enabled, TransientSpec::dt becomes the *initial* step and the
  /// controller grows/shrinks dt from a local-truncation-error estimate
  /// (divided differences over the accepted history: second difference for
  /// the backward-Euler startup steps, third for trapezoidal).  Steps are
  /// forced to land on waveform breakpoints, and the step size resets to
  /// spec.dt after each breakpoint (the integration order drops across a
  /// slope discontinuity, so history from before it is not trusted).
  /// Disabled, the transient marches the fixed uniform grid bit-identically
  /// to previous releases.
  bool adaptive_timestep = false;
  double lte_reltol = 2e-3;     ///< LTE tolerance relative to the node swing
  double lte_abstol = 1e-4;     ///< [V] LTE absolute tolerance floor
  double lte_safety = 0.9;      ///< target a little inside the tolerance
  double dt_grow_limit = 2.0;   ///< max dt growth per accepted step
  double dt_shrink_limit = 0.1; ///< min dt shrink per rejected step
  double dt_min_factor = 1e-3;  ///< dt never drops below spec.dt * this
  double dt_max_factor = 16.0;  ///< dt never grows above spec.dt * this

  /// Newton LU-bypass (batched evaluator only): keep each lane's previous
  /// LU factorization and iterate chord Newton on the true residual while
  /// it converges, falling back to a full stamp + refactor on stall.  The
  /// scalar Simulator ignores this flag — its fused factor+solve kernel is
  /// already cheaper than a retained factorization for single lanes.
  bool newton_bypass = false;

  /// MOSFET channel model.  kLevel1 (default) is the historical square law
  /// with hard sub-Vth cutoff — every pinned baseline was recorded against
  /// it.  kEkv switches every channel evaluation (scalar Newton loop,
  /// StampPlan companion pass, batched device-major loop) to the continuous
  /// weak/strong-inversion interpolation in mos_model.hpp.
  MosModel mos_model = MosModel::kLevel1;

  /// Convergence-recovery ladder (see RecoveryPolicy); off by default.
  RecoveryPolicy recovery;
  /// Cooperative evaluation deadline: abort a run (DC + transient combined;
  /// per lane in the batched evaluator) once this many Newton iterations
  /// were spent, reporting FailureStage::Deadline.  Checked between solves,
  /// so the abort point is deterministic.  0 = no deadline.
  std::uint64_t deadline_newton_iterations = 0;
};

/// True once `spent` Newton iterations exhaust the options' deadline.
[[nodiscard]] inline bool deadline_exceeded(const SimulatorOptions& options,
                                            std::uint64_t spent) {
  return options.deadline_newton_iterations != 0 &&
         spent >= options.deadline_newton_iterations;
}

/// Process-wide default switches for the options testbench backends build
/// their simulators with (the same pattern as set_dc_warm_start_enabled):
/// core::EvaluationEngine applies its EngineConfig here, and benchmarks /
/// tests toggle them directly.  Both default to off.
[[nodiscard]] bool adaptive_timestep_default();
void set_adaptive_timestep_default(bool enabled);
[[nodiscard]] bool newton_bypass_default();
void set_newton_bypass_default(bool enabled);
[[nodiscard]] bool recovery_default();
void set_recovery_default(bool enabled);
[[nodiscard]] std::uint64_t deadline_default();
void set_deadline_default(std::uint64_t max_newton_iterations);
[[nodiscard]] MosModel mos_model_default();
void set_mos_model_default(MosModel model);
[[nodiscard]] bool noise_analysis_default();
void set_noise_analysis_default(bool enabled);

/// Thread-local recovery escalation level, applied on top of the process
/// defaults by default_simulator_options().  core::EvaluationEngine raises
/// it while re-running a failed evaluation (level 1: recovery on; level >= 2:
/// a taller gmin ladder, deeper step cuts, and an extra DC restart) and
/// resets it to 0 afterwards.
[[nodiscard]] int recovery_escalation();
void set_recovery_escalation(int level);

/// SimulatorOptions with the process-wide switches applied — what testbench
/// backends pass to their Simulator / BatchSimulator.
[[nodiscard]] SimulatorOptions default_simulator_options();

/// Deterministic fault injection for tests and benches (off by default).
/// A plan is installed thread-locally; while one is installed, every Newton
/// solve on that thread consumes one solve index (DC attempts,
/// source-stepping and gmin rungs, timestep solves, and batched lanes in
/// lane order all count), and a site whose half-open [begin, end) range
/// covers the index forces the chosen failure mode on that solve.
struct FaultPlan {
  enum class Kind : std::uint8_t {
    NanStamp,        ///< poison the assembled RHS with a NaN
    SingularMatrix,  ///< zero a matrix row so factorization fails
    NonConverge,     ///< burn max_newton_iterations and report failure
    SlowConverge,    ///< converge normally, then charge extra iterations
  };
  struct Site {
    std::uint64_t begin = 0;    ///< first faulted solve index
    std::uint64_t end = 0;      ///< one past the last faulted solve index
    Kind kind = Kind::NonConverge;
    int extra_iterations = 50;  ///< SlowConverge: iterations added per solve
  };
  std::vector<Site> sites;
  /// Solve indices consumed on this thread since the plan was installed.
  /// An empty plan still counts, so tests can dry-run to number the solves.
  mutable std::uint64_t cursor = 0;

  [[nodiscard]] const Site* match(std::uint64_t index) const;
};

/// Install (nullptr: clear) the calling thread's fault plan.  The plan must
/// outlive its installation.  Test/bench-only; never installed in production.
void set_thread_fault_plan(const FaultPlan* plan);
[[nodiscard]] const FaultPlan* thread_fault_plan();

enum class AnalysisMode { Op, Transient };

/// Everything fixed over one Newton solve (one DC point or one timestep).
/// The Newton iterate itself is passed to StampPlan::stamp each iteration.
struct AssemblyInputs {
  AnalysisMode mode = AnalysisMode::Op;
  double time = 0.0;
  double dt = 0.0;
  double source_scale = 1.0;
  bool trapezoidal = false;
  /// Extra conductance to ground on every unknown node (gmin-stepping rung;
  /// 0 outside the recovery ladder, and always 0 on the solve that counts).
  double extra_gmin = 0.0;
  /// Previous-timepoint solution in padded layout (see StampPlan::padded_size);
  /// required in Transient mode.  A span so the batched evaluator can point
  /// it at one lane of its lane-strided state without copying.
  std::span<const double> x_prev{};
  /// Per-capacitor branch current i_n (trapezoidal companion); Transient only.
  std::span<const double> cap_current_prev{};
};

/// Compiled assembly plan for one circuit topology.
///
/// Construction walks the circuit once, classifies every node (ground /
/// pinned-by-source / unknown), and resolves every stamp to a flat index
/// into the matrix storage:
///   * linear static stamps (gmin, resistors, source/VCVS incidence, VCCS)
///     become (slot, value) pairs; entries in a pinned column become
///     RHS-base contributions instead,
///   * capacitor companion conductances become 4-slot records whose geq is
///     filled in per integration mode / dt,
///   * each MOSFET's Jacobian targets (rows {drain, source} x columns
///     {gate, drain, source}, plus the two RHS entries and the three iterate
///     reads) are precomputed, with ground/pinned rows and columns
///     redirected to write-only scratch slots so the stamping loop is
///     branch-free; terminal masks fold known-voltage terms into the
///     companion RHS,
///   * for each absorbed source, a KCL recovery list (conductances, cap
///     companion currents, MOS channels, neighbor branch currents) rebuilds
///     the branch current from the solved voltages.
///
/// The plan holds pointers into the Circuit; the Circuit must outlive it.
class StampPlan {
 public:
  StampPlan(const Circuit& circuit, const SimulatorOptions& options);

  /// One MOSFET's resolved stamp targets: Jacobian / RHS / iterate-read
  /// slots plus the hoisted device parameters.  Exposed so the batched
  /// evaluator can run its device-major companion pass across lanes; slot
  /// indices are identical across structurally congruent circuits (same
  /// topology, element order, and node order — only values differing).
  struct MosStamp {
    std::size_t j_dg, j_dd, j_ds;  ///< drain-row Jacobian slots
    std::size_t j_sg, j_sd, j_ss;  ///< source-row Jacobian slots
    std::size_t rhs_d, rhs_s;
    std::size_t xg, xd, xs;        ///< padded solution reads
    double mg, md, ms;             ///< 1.0 iff that terminal is an unknown node
    const pdk::MosParams* params;
    double w_over_l;               ///< hoisted out of the Newton loop
  };

  /// Solved unknowns: free node voltages, then branch currents.
  [[nodiscard]] std::size_t unknown_count() const { return n_; }
  /// Free (unknown) node voltages — the damping clamp applies to these.
  [[nodiscard]] std::size_t unknown_node_count() const { return nu_; }
  /// Nodes absorbed because an ideal grounded source pins their voltage.
  [[nodiscard]] std::size_t pinned_count() const { return pinned_.size(); }
  /// Length of padded solution vectors: unknown_count() + pinned_count() + 1.
  /// Pinned node voltages live after the unknowns (filled from begin_solve's
  /// values via load_pinned); the final slot stands in for ground and is
  /// pinned to 0.
  [[nodiscard]] std::size_t padded_size() const { return n_ + pinned_.size() + 1; }

  /// Index into a padded solution vector for any node (unknown, pinned, or
  /// ground — ground maps to the trailing zero slot).
  [[nodiscard]] std::size_t x_slot(NodeId node) const { return node_slot_[node]; }
  /// True if the node's voltage is a solved unknown.
  [[nodiscard]] bool node_is_unknown(NodeId node) const { return node_slot_[node] < nu_; }

  /// Sentinel for "no solved slot" (absorbed source branch).
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  /// x-slot of a voltage source's branch-current unknown, or kNoSlot when
  /// the source was absorbed into a pinned node.
  [[nodiscard]] std::size_t vsource_branch_slot(std::size_t si) const {
    return vsrc_branch_[si];
  }

  /// Rebuild the cached static matrix / RHS base for one Newton solve.  The
  /// static matrix is keyed on (mode, integration method, dt) and reused
  /// across solves when the key is unchanged; the RHS base and the pinned
  /// node voltages are rebuilt every call (they depend on time, source
  /// scale, and the previous timestep).
  void begin_solve(const AssemblyInputs& in);

  /// Copy the pinned node voltages computed by begin_solve into the padded
  /// region of `x` (and re-pin the ground slot to 0).
  void load_pinned(std::span<double> x) const;

  /// One Newton iteration's assembly: copy the cached static parts into
  /// `g` / `rhs`, then stamp the MOSFET companion models around iterate `x`.
  /// `x` must have padded_size() entries with the pinned/ground tail loaded
  /// via load_pinned(); `rhs` needs unknown_count() + 1 entries; `g` must be
  /// sized to unknown_count().
  void stamp(std::span<const double> x, DenseMatrix& g, std::span<double> rhs) const;

  /// The linear half of stamp(): copy the cached static matrix / RHS base
  /// into `g` / `rhs` without the MOSFET companion pass.  The batched
  /// evaluator uses this so it can interleave the nonlinear pass
  /// device-major across lanes.  Preconditions as stamp().
  void load_static(DenseMatrix& g, std::span<double> rhs) const;

  /// Per-MOSFET stamp records in circuit order (see MosStamp).
  [[nodiscard]] std::span<const MosStamp> mos_stamps() const { return mosfets_; }

  /// Channel model every MOSFET in this plan is linearized with (captured
  /// from SimulatorOptions at construction).  The batched evaluator reads it
  /// so its device-major companion pass evaluates the exact expressions the
  /// scalar loop does.
  [[nodiscard]] MosModel mos_model() const { return mos_model_; }

  /// True nonlinear KCL residual at iterate `x` for the current solve:
  /// r = G_static * x + i_mos(x) - rhs_base, row for row the amount by which
  /// the assembled equations are violated.  Used by the Newton LU-bypass
  /// path, which iterates on frozen factors and only needs the residual —
  /// no Jacobian, no matrix copy.  Must be called between begin_solve() and
  /// the next begin_solve(); `x` as in stamp(); `r` needs
  /// unknown_count() + 1 entries (trailing scratch slot).
  void residual(std::span<const double> x, std::span<double> r) const;

  /// Fill `out[si]` with the branch current of every independent voltage
  /// source: read from the solution for branch-form sources, recovered from
  /// KCL at the pinned node for absorbed ones.  `cap_current` may be empty
  /// (operating point: capacitors open).  `time`/`source_scale` evaluate
  /// current-source waveforms appearing in the recovery sums.
  void vsource_currents(std::span<const double> x, std::span<const double> cap_current,
                        double time, double source_scale, std::span<double> out) const;

 private:
  struct LinearStamp {
    std::size_t slot;
    double value;
  };
  /// Static matrix entry whose column is a pinned node: the known voltage
  /// contribution goes to the RHS base instead (rhs[row] += coeff * V_pin).
  struct PinnedRhsStamp {
    std::size_t rhs_row;
    double coeff;
    std::size_t pin;      ///< index into pinned_vals_
  };
  struct CapStamp {
    std::size_t aa, ab, bb, ba;  ///< matrix slots (scratch unless unknown x unknown)
    std::size_t rhs_a, rhs_b;    ///< RHS slots (scratch unless unknown)
    std::size_t xa, xb;          ///< padded solution reads for v_prev
    std::size_t pin_a, pin_b;    ///< pinned_vals_ index or kNoPin
    double farads;
  };
  struct VsrcStamp {
    std::size_t branch;          ///< RHS row of the source's branch equation
    const Waveform* waveform;
  };
  struct IsrcStamp {
    std::size_t rhs_pos, rhs_neg;
    const Waveform* waveform;
  };
  /// A source absorbed into a known node voltage.
  struct PinnedSource {
    std::size_t vsource_index;
    NodeId node;
    double sign;                 ///< V_node = sign * waveform(t) * scale
    const Waveform* waveform;
  };
  /// One KCL term of a pinned source's recovered branch current.
  struct RecoveryTerm {
    enum class Kind : std::uint8_t {
      Conductance,    ///< coeff * (x[xa] - x[xb])   (resistors, gmin, VCCS)
      CapCurrent,     ///< coeff * cap_current[index]
      MosChannel,     ///< coeff * i_ds(x)           (drain +1 / source -1)
      SourceCurrent,  ///< coeff * waveform(t) * scale
      BranchCurrent,  ///< coeff * x[index]          (neighbor V/E branch)
    };
    Kind kind;
    double coeff = 0.0;
    std::size_t xa = 0, xb = 0;
    std::size_t index = 0;
    const pdk::MosParams* params = nullptr;
    double w_over_l = 0.0;
    std::size_t xg = 0, xd = 0, xs = 0;
    const Waveform* waveform = nullptr;
  };

  static constexpr std::size_t kNoPin = kNoSlot;

  [[nodiscard]] std::size_t mat_slot(NodeId row, NodeId col) const;
  [[nodiscard]] std::size_t rhs_slot(NodeId node) const;
  [[nodiscard]] std::size_t pin_index(NodeId node) const { return node_pin_[node]; }
  /// Route one static matrix entry (row, col, value): unknown x unknown
  /// becomes a LinearStamp in `out`; a pinned column becomes a
  /// PinnedRhsStamp; a pinned/ground row is dropped.
  void route_static(std::vector<LinearStamp>& out, NodeId row, NodeId col, double value);
  /// Same, for rows addressed directly by unknown index (branch equations).
  void route_static_row(std::vector<LinearStamp>& out, std::size_t row_unknown, NodeId col,
                        double value);
  void append_conductance(NodeId a, NodeId b, double cond);
  void build_recovery(const Circuit& circuit, const SimulatorOptions& options);

  MosModel mos_model_ = MosModel::kLevel1;
  std::size_t n_ = 0;         ///< solved unknowns
  std::size_t nu_ = 0;        ///< unknown node voltages (first in the ordering)
  std::size_t n_nodes_ = 0;   ///< including ground
  std::size_t stride_ = 0;    ///< padded row stride (DenseMatrix::row_stride)
  std::size_t scratch_ = 0;   ///< flat matrix scratch slot (n_*stride_)
  std::vector<std::size_t> node_slot_;     ///< NodeId -> padded x slot
  std::vector<std::size_t> node_pin_;      ///< NodeId -> pinned_vals_ index or kNoPin
  std::vector<std::size_t> vsrc_branch_;   ///< vsource index -> x slot or kNoPin
  std::vector<PinnedSource> pinned_;
  std::vector<std::vector<RecoveryTerm>> recovery_;  ///< per pinned source

  std::vector<LinearStamp> pre_cap_;   ///< gmin + resistors (applied before caps)
  std::vector<CapStamp> caps_;
  std::vector<LinearStamp> post_cap_;  ///< source/VCVS incidence + VCCS
  std::vector<PinnedRhsStamp> pinned_rhs_;  ///< static pinned-column terms
  std::vector<VsrcStamp> vsrcs_;       ///< branch-form sources only
  std::vector<IsrcStamp> isrcs_;
  std::vector<MosStamp> mosfets_;

  // Cached static assembly, keyed on what can change between Newton solves.
  struct StaticKey {
    AnalysisMode mode = AnalysisMode::Op;
    bool trapezoidal = false;
    double dt = 0.0;
    double extra_gmin = 0.0;
    bool valid = false;
  };
  StaticKey key_;
  std::vector<double> static_g_;   ///< n*stride + 1, scratch slot last
  std::vector<double> rhs_base_;   ///< n + 1, scratch slot last
  std::vector<double> pinned_vals_;///< per pinned source, set by begin_solve
};

/// Reusable scratch buffers for the Newton loop: the padded RHS, the solver
/// (which owns the assembly-target matrix, its factorization, and the
/// permutation), and the iterate produced by each solve.  Every buffer is
/// fully overwritten before use, so sharing a workspace across solves,
/// timesteps, and even different circuits never changes results — it only
/// removes the per-solve heap traffic.  A workspace is single-threaded
/// state: use one per thread.
struct SimulatorWorkspace {
  std::vector<double> rhs;    ///< unknown_count() + 1, scratch slot last
  std::vector<double> x_new;
  LuSolver solver;

  /// Size every buffer for an n-unknown system, reusing capacity.
  void prepare(std::size_t n);
};

/// The calling thread's shared workspace.  Simulators constructed without an
/// explicit workspace use this one, so repeated evaluations on a worker
/// thread (the common testbench pattern) reuse the same buffers.
[[nodiscard]] SimulatorWorkspace& thread_local_workspace();

/// One damped Newton solve over an already-compiled plan: begin_solve,
/// load_pinned, then iterate stamp / fused factor-solve / clamped update
/// until the maximum node-voltage change drops below vtol.  `x` is the
/// initial guess on entry and the converged iterate on exit (padded
/// layout); `iterations` is incremented by the iterations spent.  This is
/// the kernel behind Simulator::operating_point / transient, shared with
/// the batched evaluator so both paths run bit-identical arithmetic.
[[nodiscard]] bool newton_solve_plan(StampPlan& plan, const SimulatorOptions& options,
                                     SimulatorWorkspace& ws, const AssemblyInputs& in,
                                     std::vector<double>& x, int& iterations);

/// DC operating point over an already-compiled plan, including the warm
/// start attempt, cold restart, source-stepping fallback, and (when
/// options.recovery.enabled) the gmin-stepping ladder (see
/// Simulator::operating_point, which delegates here).  `failure`, when
/// non-null, receives the structured report on non-convergence.  `time`
/// freezes source waveforms at a transient instant for the restart-from-DC
/// recovery rung (0 = the conventional t=0 operating point).
[[nodiscard]] OpResult operating_point_plan(const Circuit& circuit, StampPlan& plan,
                                            const SimulatorOptions& options,
                                            SimulatorWorkspace& ws, const OpResult* warm_start,
                                            FailureReport* failure = nullptr, double time = 0.0);

/// Human-readable label for one row of the solved system: the node name for
/// unknown-node rows, "branch <k>" for branch-current rows.  Used by failure
/// reports to name the worst-residual row.
[[nodiscard]] std::string row_label(const Circuit& circuit, const StampPlan& plan,
                                    std::size_t row);

/// Fill `report`'s residual fields from the last failed Newton iterate `x`:
/// computes the true KCL residual (plan state must still be the failing
/// solve's begin_solve) and records the worst row's magnitude and label.
void note_worst_residual(const Circuit& circuit, StampPlan& plan, std::span<const double> x,
                         FailureReport& report);

class Simulator {
 public:
  /// `workspace` may outlive-the-call scratch storage; nullptr selects the
  /// calling thread's shared workspace.  The workspace must not be used by
  /// two simulators concurrently.
  explicit Simulator(const Circuit& circuit, SimulatorOptions options = {},
                     SimulatorWorkspace* workspace = nullptr);

  /// DC operating point (capacitors open).  `warm_start` optionally seeds
  /// Newton from a previously converged operating point of the same circuit
  /// topology (e.g. another mismatch draw of the same design); on any
  /// mismatch or failure the solver falls back to the cold-start path, so a
  /// warm start can change the iteration count but never the converged
  /// solution beyond vtol.
  [[nodiscard]] OpResult operating_point(const OpResult* warm_start = nullptr);

  /// Transient analysis.  `dc_warm_start` seeds the initial DC solve (no
  /// effect when spec.use_ic); the converged DC point is returned in
  /// TransientResult::dc_op for reuse.
  [[nodiscard]] TransientResult transient(const TransientSpec& spec,
                                          const OpResult* dc_warm_start = nullptr);

  [[nodiscard]] const StampPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] bool newton_solve(const AssemblyInputs& in, std::vector<double>& x,
                                  int& iterations);
  [[nodiscard]] std::size_t unknown_count() const { return plan_.unknown_count(); }
  [[nodiscard]] double voltage_of(const std::vector<double>& x, NodeId node) const;

  const Circuit& circuit_;
  SimulatorOptions options_;
  SimulatorWorkspace* workspace_;
  StampPlan plan_;
  std::size_t n_nodes_;    ///< including ground
  std::size_t n_vsrc_;
  std::size_t n_vcvs_;
};

}  // namespace glova::spice
